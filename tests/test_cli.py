"""Tests for the splitdetect command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.pcap import read_trace
from repro.signatures import dump_rules, Signature


@pytest.fixture
def demo_pcap(tmp_path):
    path = tmp_path / "demo.pcap"
    assert main(["generate", str(path), "--flows", "8", "--seed", "3"]) == 0
    return path


class TestGenerate:
    def test_writes_readable_pcap(self, demo_pcap):
        packets = list(read_trace(demo_pcap))
        assert packets

    def test_reports_packet_count(self, tmp_path, capsys):
        path = tmp_path / "g.pcap"
        assert main(["generate", str(path), "--flows", "3"]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_attack_injection(self, tmp_path, capsys):
        path = tmp_path / "attack.pcap"
        code = main(["generate", str(path), "--flows", "4", "--attack", "tcp_seg_8"])
        assert code == 0
        assert "1 attack flows" in capsys.readouterr().out

    def test_unknown_strategy_rejected(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "x.pcap"), "--attack", "nonsense"])
        assert code == 2
        assert "unknown strategy" in capsys.readouterr().err


class TestRun:
    def test_split_engine(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        main(["generate", str(path), "--flows", "6", "--attack", "tcp_seg_8"])
        capsys.readouterr()
        assert main(["run", str(path), "--engine", "split"]) == 0
        out = capsys.readouterr().out
        assert "diverted flows" in out
        assert "alerts:" in out

    def test_conventional_engine(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        main(["generate", str(path), "--flows", "6", "--attack", "plain"])
        capsys.readouterr()
        assert main(["run", str(path), "--engine", "conventional"]) == 0
        out = capsys.readouterr().out
        assert "peak state" in out

    def test_naive_engine(self, demo_pcap, capsys):
        assert main(["run", str(demo_pcap), "--engine", "naive"]) == 0
        assert "alerts:" in capsys.readouterr().out

    def test_state_backend_sketch(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        main(["generate", str(path), "--flows", "6", "--attack", "tcp_seg_8"])
        capsys.readouterr()
        assert main(["run", str(path), "--state-backend", "sketch"]) == 0
        out = capsys.readouterr().out
        assert "diverted flows" in out
        assert "peak state" in out

    def test_state_backend_table(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        main(["generate", str(path), "--flows", "6"])
        capsys.readouterr()
        assert main(["run", str(path), "--state-backend", "table"]) == 0
        assert "peak state" in capsys.readouterr().out

    def test_state_backend_needs_split_engine(self, demo_pcap, capsys):
        code = main(["run", str(demo_pcap), "--engine", "naive",
                     "--state-backend", "sketch"])
        assert code == 2
        assert "state-backend" in capsys.readouterr().err

    def test_state_backend_sketch_parallel(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        main(["generate", str(path), "--flows", "8", "--attack", "tcp_seg_8"])
        capsys.readouterr()
        assert main(["run", str(path), "--state-backend", "sketch",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "shards" in out

    def test_custom_rules_file(self, tmp_path, capsys):
        rules_path = tmp_path / "my.rules"
        rules_path.write_text(
            dump_rules([Signature(sid=1, pattern=b"abcdefghijklmnopqrstuvwx", msg="m")])
        )
        pcap = tmp_path / "t.pcap"
        main(["generate", str(pcap), "--flows", "3"])
        capsys.readouterr()
        assert main(["run", str(pcap), "--rules", str(rules_path)]) == 0


class TestTelemetryFlags:
    @pytest.fixture
    def attack_pcap(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        main(["generate", str(path), "--flows", "6", "--attack", "tcp_seg_8"])
        capsys.readouterr()
        return path

    def test_telemetry_out_writes_valid_json(self, attack_pcap, tmp_path, capsys):
        out = tmp_path / "stats.json"
        assert main(["run", str(attack_pcap), "--telemetry-out", str(out)]) == 0
        assert "telemetry (json) written" in capsys.readouterr().out
        snapshot = json.loads(out.read_text())
        assert set(snapshot) == {
            "counters", "gauges", "histograms", "journal", "profile",
        }
        assert "fast_path" in snapshot["profile"]["stages"]
        # The acceptance-criteria series are all present.
        stages = {
            sample["labels"]["stage"]
            for sample in snapshot["histograms"]["repro_engine_stage_latency_ns"]["values"]
        }
        assert {"decode", "fast_path", "ac_prescan", "slow_path"} <= stages
        anomaly = snapshot["counters"]["repro_fastpath_anomaly_total"]
        assert sum(v["value"] for v in anomaly["values"]) > 0
        assert snapshot["gauges"]["repro_engine_diversion_byte_fraction"]["values"]
        ratio = snapshot["gauges"]["repro_run_state_bytes_ratio"]["values"][0]["value"]
        assert 0 < ratio < 1

    def test_telemetry_prometheus_format(self, attack_pcap, tmp_path, capsys):
        out = tmp_path / "stats.prom"
        code = main(["run", str(attack_pcap), "--telemetry-out", str(out),
                     "--telemetry-format", "prometheus"])
        assert code == 0
        text = out.read_text()
        assert "# TYPE repro_engine_packets_total counter" in text
        assert 'repro_engine_stage_latency_ns_bucket{stage="decode",le="+Inf"}' in text

    def test_telemetry_for_other_engines(self, attack_pcap, tmp_path, capsys):
        for engine in ("conventional", "naive"):
            out = tmp_path / f"{engine}.json"
            code = main(["run", str(attack_pcap), "--engine", engine,
                         "--telemetry-out", str(out)])
            assert code == 0
            snapshot = json.loads(out.read_text())
            assert any(name.startswith(f"repro_{engine}_")
                       for name in snapshot["counters"])

    def test_missing_parent_directory_rejected(self, attack_pcap, tmp_path, capsys):
        bad = tmp_path / "no" / "such" / "dir" / "s.json"
        with pytest.raises(SystemExit) as exc:
            main(["run", str(attack_pcap), "--telemetry-out", str(bad)])
        assert exc.value.code == 2
        assert "parent directory" in capsys.readouterr().err

    def test_no_telemetry_runs_clean(self, attack_pcap, capsys):
        assert main(["run", str(attack_pcap), "--no-telemetry"]) == 0
        assert "telemetry" not in capsys.readouterr().out

    def test_no_telemetry_conflicts_with_out(self, attack_pcap, tmp_path, capsys):
        code = main(["run", str(attack_pcap), "--no-telemetry",
                     "--telemetry-out", str(tmp_path / "s.json")])
        assert code == 2
        assert "drop --no-telemetry" in capsys.readouterr().err

    def test_bad_format_rejected(self, attack_pcap, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", str(attack_pcap), "--telemetry-format", "xml"]
            )


class TestTraceFlags:
    @pytest.fixture
    def attack_pcap(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        main(["generate", str(path), "--flows", "6", "--attack", "tcp_seg_8"])
        capsys.readouterr()
        return path

    def test_trace_out_writes_jsonl(self, attack_pcap, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main(["run", str(attack_pcap), "--trace-out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "spans written" in stdout
        assert "stage profile" in stdout
        spans = [json.loads(line) for line in out.read_text().splitlines()]
        assert spans
        events = {span["event"] for span in spans}
        assert {"divert", "confirm"} <= events
        for span in spans:
            assert {"trace", "ts", "shard", "gen", "seq",
                    "stage", "event", "flow"} <= set(span)

    def test_trace_out_parallel(self, attack_pcap, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["run", str(attack_pcap), "--trace-out", str(out),
                     "--workers", "2"])
        assert code == 0
        spans = [json.loads(line) for line in out.read_text().splitlines()]
        assert "divert" in {span["event"] for span in spans}

    def test_trace_needs_split_engine(self, attack_pcap, tmp_path, capsys):
        code = main(["run", str(attack_pcap), "--engine", "naive",
                     "--trace-out", str(tmp_path / "t.jsonl")])
        assert code == 2
        assert "split engine" in capsys.readouterr().err

    def test_serve_conflicts_with_no_telemetry(self, attack_pcap, capsys):
        code = main(["run", str(attack_pcap), "--no-telemetry",
                     "--serve-telemetry", "0"])
        assert code == 2
        assert "drop --no-telemetry" in capsys.readouterr().err

    def test_serve_telemetry_announces_endpoint(self, attack_pcap, capsys):
        assert main(["run", str(attack_pcap), "--serve-telemetry", "0"]) == 0
        assert "telemetry endpoint: http://127.0.0.1:" in capsys.readouterr().out

    def test_trace_sample_validation(self, attack_pcap):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", str(attack_pcap), "--trace-sample", "0"]
            )


class TestExplainCommand:
    @pytest.fixture
    def trace_dump(self, tmp_path, capsys):
        pcap = tmp_path / "t.pcap"
        main(["generate", str(pcap), "--flows", "6", "--attack", "tcp_seg_8"])
        out = tmp_path / "trace.jsonl"
        assert main(["run", str(pcap), "--trace-out", str(out)]) == 0
        capsys.readouterr()
        return out

    def test_lists_traces_without_selector(self, trace_dump, capsys):
        assert main(["explain", str(trace_dump)]) == 0
        out = capsys.readouterr().out
        assert "traces in" in out
        assert "spans=" in out

    def test_flow_selector_reconstructs_timeline(self, trace_dump, capsys):
        assert main(["explain", str(trace_dump), "10.250.0"]) == 0
        out = capsys.readouterr().out
        assert "divert" in out
        assert "confirm" in out
        # Timeline lines are time-ordered.
        times = [
            float(line.split("t=")[1].split()[0])
            for line in out.splitlines() if "t=" in line
        ]
        assert times == sorted(times)

    def test_trace_id_prefix_selector(self, trace_dump, capsys):
        first = json.loads(trace_dump.read_text().splitlines()[0])
        assert main(["explain", str(trace_dump), first["trace"][:8]]) == 0
        assert first["trace"] in capsys.readouterr().out

    def test_no_match_exits_one(self, trace_dump, capsys):
        assert main(["explain", str(trace_dump), "no-such-flow"]) == 1
        assert "no spans match" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_parallel_timeline_matches_serial(self, tmp_path, capsys):
        """The acceptance criterion: explain over a 4-worker run's dump
        reconstructs the same divert->confirm timeline as the serial
        single-process dump (modulo the shard column)."""
        pcap = tmp_path / "t.pcap"
        main(["generate", str(pcap), "--flows", "6", "--attack", "tcp_seg_8"])
        serial_out = tmp_path / "serial.jsonl"
        parallel_out = tmp_path / "parallel.jsonl"
        assert main(["run", str(pcap), "--trace-out", str(serial_out)]) == 0
        assert main(["run", str(pcap), "--trace-out", str(parallel_out),
                     "--workers", "4"]) == 0
        capsys.readouterr()
        assert main(["explain", str(serial_out), "10.250.0"]) == 0
        serial_text = capsys.readouterr().out
        assert main(["explain", str(parallel_out), "10.250.0"]) == 0
        parallel_text = capsys.readouterr().out

        def timeline(text):
            return [
                (line.split("[", 1)[1],)  # stage] event fields...
                for line in text.splitlines() if "t=" in line
            ]

        assert "divert" in serial_text
        assert timeline(serial_text) == timeline(parallel_text)


class TestRulesCommand:
    def test_corpus_stats(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        assert "signatures: 351" in out
        assert "small-packet threshold" in out

    def test_histogram(self, capsys):
        assert main(["rules", "--histogram"]) == 0
        assert "pattern-length histogram" in capsys.readouterr().out

    def test_piece_length_option(self, capsys):
        assert main(["rules", "--piece-length", "12"]) == 0
        assert "B: 24" in capsys.readouterr().out


class TestStrategiesCommand:
    def test_lists_catalog(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "tcp_seg_1" in out and "ip_frag_overlap" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "x.pcap", "--engine", "bogus"])


class TestParallelRun:
    @pytest.fixture
    def attack_pcap(self, tmp_path, capsys):
        path = tmp_path / "t.pcap"
        main(["generate", str(path), "--flows", "6", "--attack", "tcp_seg_8"])
        capsys.readouterr()
        return path

    @pytest.fixture
    def small_rules(self, tmp_path):
        """One-signature rules file so worker engines build fast."""
        path = tmp_path / "small.rules"
        path.write_text(
            dump_rules([Signature(sid=1, pattern=b"abcdefghijklmnopqrstuvwx", msg="m")])
        )
        return path

    def test_workers_runs_sharded(self, attack_pcap, small_rules, capsys):
        code = main(["run", str(attack_pcap), "--workers", "2",
                     "--rules", str(small_rules)])
        assert code == 0
        out = capsys.readouterr().out
        assert "across 2 shards" in out
        assert "shard[0]:" in out and "shard[1]:" in out
        assert "alerts:" in out

    def test_workers_with_shed_and_tuple5(self, attack_pcap, small_rules, capsys):
        code = main(["run", str(attack_pcap), "--workers", "2", "--shed",
                     "--shard-policy", "tuple5", "--queue-depth", "4",
                     "--rules", str(small_rules)])
        assert code == 0
        assert "across 2 shards" in capsys.readouterr().out

    def test_workers_telemetry_out(self, attack_pcap, small_rules, tmp_path, capsys):
        out = tmp_path / "par.json"
        code = main(["run", str(attack_pcap), "--workers", "2",
                     "--rules", str(small_rules), "--telemetry-out", str(out)])
        assert code == 0
        assert "telemetry (json) written" in capsys.readouterr().out
        snapshot = json.loads(out.read_text())
        assert "repro_runtime_workers" in snapshot["gauges"]

    def test_workers_requires_split_engine(self, attack_pcap, capsys):
        code = main(["run", str(attack_pcap), "--workers", "2",
                     "--engine", "naive"])
        assert code == 2
        assert "split engine only" in capsys.readouterr().err

    def test_shed_and_block_mutually_exclusive(self, attack_pcap):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", str(attack_pcap), "--workers", "2", "--shed", "--block"]
            )

    def test_bad_shard_policy_rejected(self, attack_pcap):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", str(attack_pcap), "--shard-policy", "random"]
            )

    def test_bad_evict_interval_rejected(self, attack_pcap):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", str(attack_pcap), "--evict-interval", "-1"]
            )

    def test_evict_interval_single_process(self, attack_pcap, capsys):
        code = main(["run", str(attack_pcap), "--evict-interval", "30"])
        assert code == 0
        assert "processed" in capsys.readouterr().out


class TestLintCommand:
    @pytest.fixture
    def dup_sid_rules(self, tmp_path):
        """A ruleset with one ERROR (duplicate sid) and warnings."""
        path = tmp_path / "dup.rules"
        path.write_text(
            dump_rules(
                [
                    Signature(sid=7, pattern=b"abcdefghijklmnopqrstuvwx", msg="a"),
                    Signature(sid=7, pattern=b"zyxwvutsrqponmlkjihgfedc", msg="b"),
                ]
            )
        )
        return path

    @pytest.fixture
    def warn_only_rules(self, tmp_path):
        """A ruleset with a warning (unsplittable short pattern), no errors."""
        path = tmp_path / "warn.rules"
        path.write_text(dump_rules([Signature(sid=9, pattern=b"ab", msg="w")]))
        return path

    def test_errors_exit_nonzero(self, dup_sid_rules, capsys):
        code = main(["lint", "--rules", str(dup_sid_rules), "--no-model"])
        assert code == 1
        assert "duplicate-sid" in capsys.readouterr().out

    def test_warnings_alone_exit_zero(self, warn_only_rules, capsys):
        assert main(["lint", "--rules", str(warn_only_rules), "--no-model"]) == 0
        assert "unsplittable" in capsys.readouterr().out

    def test_strict_fails_on_warnings(self, warn_only_rules):
        code = main(["lint", "--rules", str(warn_only_rules), "--no-model",
                     "--strict"])
        assert code == 1

    def test_strict_passes_clean_ruleset(self, tmp_path):
        path = tmp_path / "clean.rules"
        path.write_text(
            dump_rules([Signature(sid=1, pattern=b"abcdefghijklmnopqrstuvwx",
                                  msg="m")])
        )
        assert main(["lint", "--rules", str(path), "--no-model", "--strict"]) == 0

    def test_json_output_machine_readable(self, dup_sid_rules, capsys):
        code = main(["lint", "--rules", str(dup_sid_rules), "--no-model",
                     "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == 2
        assert payload["errors"] == 1
        codes = {finding["code"] for finding in payload["findings"]}
        assert "duplicate-sid" in codes
        levels = {finding["level"] for finding in payload["findings"]}
        assert levels <= {"error", "warning", "info"}

    def test_json_on_bundled_corpus(self, capsys):
        assert main(["lint", "--no-model", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == 351
        assert payload["errors"] == 0


class TestCheckCommand:
    def test_repo_is_clean(self, capsys):
        """`splitdetect check src/repro` exits 0 against the committed config."""
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        assert main(["check", str(root / "src" / "repro"),
                     "--root", str(root)]) == 0
        assert "0 new finding" in capsys.readouterr().out

    def test_check_json_mode(self, capsys):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[1]
        code = main(["check", str(root / "src" / "repro" / "runtime"),
                     "--root", str(root), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"] == []
        assert payload["checked_files"] > 5
