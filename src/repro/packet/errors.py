"""Exceptions raised by the packet-parsing layer."""


class PacketError(Exception):
    """Base class for all packet parsing/serialization errors."""


class TruncatedPacketError(PacketError):
    """Raised when the byte buffer ends before the header/payload it promises."""

    def __init__(self, what: str, needed: int, got: int) -> None:
        super().__init__(f"truncated {what}: need {needed} bytes, got {got}")
        self.what = what
        self.needed = needed
        self.got = got


class MalformedPacketError(PacketError):
    """Raised when a field holds a value the protocol forbids."""


class ChecksumError(PacketError):
    """Raised (only under strict parsing) when a checksum does not verify."""

    def __init__(self, what: str, expected: int, actual: int) -> None:
        super().__init__(
            f"bad {what} checksum: header says 0x{expected:04x}, computed 0x{actual:04x}"
        )
        self.what = what
        self.expected = expected
        self.actual = actual
