"""Columnar packet batches: struct-of-arrays decode for the fast path.

The paper's economy is per-byte asymmetry: the fast path must do almost
nothing per packet.  Our object ingest violated that shape -- every
frame became an :class:`~repro.packet.ip.IPv4Packet` dataclass (header
unpack, payload copy, options copy, ``TimedPacket`` wrapper) before the
engine ever looked at it.  A :class:`PacketBatch` instead carries one
shared ``bytes`` capture buffer plus parallel ``array`` columns of the
few fields the fast path actually consults (protocol, fragment bits,
TTL, addresses/ports, TCP seq/flags, payload offset/length), so the
clean majority of rows is processed with integer reads and zero-copy
``memoryview`` slices.  Only rows the engine flags -- fragment,
diverted, anomalous, matched, or undecodable -- are materialized into
real packet objects via :meth:`PacketBatch.materialize` and dropped
into the existing object path unchanged.

Column schema (one entry per valid row, in capture order):

===========  =========  ====================================================
column       typecode   meaning
===========  =========  ====================================================
ts           ``d``      capture timestamp (same arithmetic as the reader)
off          ``Q``      offset of the IPv4 header in :attr:`buffer`
caplen       ``I``      captured bytes from ``off`` (may include padding)
proto        ``B``      IPv4 protocol number
fragflags    ``H``      raw flags+fragment-offset field (``& 0x3FFF`` != 0
                        means fragment; ``& 0x1FFF`` is offset in 8-byte
                        units)
ttl          ``B``      IPv4 TTL
src / dst    ``I``      IPv4 addresses as big-endian integers
sport/dport  ``H``      ``flow_key_of`` port semantics: first 4 bytes of
                        the IP payload when present, else 0
seq          ``I``      TCP sequence number (0 for UDP / undecodable)
tcpflags     ``B``      TCP flag byte (0 for UDP / undecodable)
pay_off      ``Q``      offset of the transport payload in :attr:`buffer`
pay_len      ``I``      transport payload length (post snaplen check)
tok          ``B``      1 when the transport header decoded cleanly
flow_hash    ``Q``      FNV-1a of the port-less canonical flow key
                        (:func:`~repro.runtime.sharding.shard_key_bytes`
                        spelling; 0 for non-TCP/UDP rows)
===========  =========  ====================================================

``tok == 0`` marks rows whose transport header would make
``decode_tcp`` / ``UdpDatagram.parse`` raise; the engine materializes
them so the object path produces the authoritative error and
accounting.  Malformed *IP* rows never become rows at all -- the reader
quarantines them (as real exception instances on
:attr:`PacketBatch.quarantined`) or raises, mirroring the two object
readers.
"""

from __future__ import annotations

from array import array
from functools import lru_cache
from typing import TYPE_CHECKING, Iterable, Sequence

from .flows import FlowKey, TimedPacket
from .ip import IPv4Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..runtime.sharding import ShardRouter

__all__ = ["PacketBatch", "ip_u32_to_str"]

IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

_COLUMNS: tuple[tuple[str, str], ...] = (
    ("ts", "d"),
    ("off", "Q"),
    ("caplen", "I"),
    ("proto", "B"),
    ("fragflags", "H"),
    ("ttl", "B"),
    ("src", "I"),
    ("dst", "I"),
    ("sport", "H"),
    ("dport", "H"),
    ("seq", "I"),
    ("tcpflags", "B"),
    ("pay_off", "Q"),
    ("pay_len", "I"),
    ("tok", "B"),
    ("flow_hash", "Q"),
)

_COLUMN_NAMES = tuple(name for name, _ in _COLUMNS)

# Bounded intern caches.  Flow identities repeat heavily (a trace has
# far fewer flows than packets), so string formatting and FNV hashing
# are paid once per flow, not once per packet.  Cleared wholesale at the
# cap -- an adversarial many-flow trace degrades to cache misses, never
# to unbounded memory.
_INTERN_CAP = 65536
_PORTLESS_HASHES: dict[tuple[int, int, int], int] = {}
_TUPLE5_HASHES: dict[tuple[int, int, int, int, int], int] = {}


@lru_cache(maxsize=_INTERN_CAP)
def ip_u32_to_str(value: int) -> str:
    """Dotted-quad string for a big-endian IPv4 address integer."""
    return (
        f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}."
        f"{(value >> 8) & 0xFF}.{value & 0xFF}"
    )


def portless_flow_hash(src: int, dst: int, proto: int) -> int:
    """FNV-1a of the port-less canonical shard key for an address pair.

    Matches ``fnv1a_64(shard_key_bytes(flow, with_ports=False))`` for
    every ``FlowKey`` over this address pair: the port-less key only
    depends on the canonically ordered addresses, and tuple ordering on
    ``(addr, port)`` reduces to string ordering on ``addr`` whenever the
    addresses differ (and is irrelevant when they are equal).
    """
    key = (src, dst, proto)
    cached = _PORTLESS_HASHES.get(key)
    if cached is None:
        from ..core.flowtable import fnv1a_64

        if len(_PORTLESS_HASHES) >= _INTERN_CAP:
            _PORTLESS_HASHES.clear()
        a = ip_u32_to_str(src)
        b = ip_u32_to_str(dst)
        if b < a:
            a, b = b, a
        cached = fnv1a_64(f"{a}|{b}|{proto}".encode())
        _PORTLESS_HASHES[key] = cached
    return cached


def _tuple5_flow_hash(src: int, dst: int, sport: int, dport: int, proto: int) -> int:
    key = (src, dst, sport, dport, proto)
    cached = _TUPLE5_HASHES.get(key)
    if cached is None:
        from ..core.flowtable import fnv1a_64
        from ..runtime.sharding import shard_key_bytes

        if len(_TUPLE5_HASHES) >= _INTERN_CAP:
            _TUPLE5_HASHES.clear()
        flow = FlowKey(ip_u32_to_str(src), ip_u32_to_str(dst), sport, dport, proto)
        cached = fnv1a_64(shard_key_bytes(flow, with_ports=True))
        _TUPLE5_HASHES[key] = cached
    return cached


class PacketBatch:
    """A run of decoded packets as parallel columns over one buffer.

    Instances are cheap to slice (:meth:`select` shares the buffer) and
    safe to pickle (:meth:`compact` first copies just the referenced
    bytes so a worker never receives the whole capture file; the lazy
    memoryview is dropped on ``__getstate__`` -- SD103).
    """

    __slots__ = ("buffer", "quarantined", "_view") + _COLUMN_NAMES

    buffer: bytes
    quarantined: list[BaseException]
    _view: memoryview | None
    ts: "array[float]"
    off: "array[int]"
    caplen: "array[int]"
    proto: "array[int]"
    fragflags: "array[int]"
    ttl: "array[int]"
    src: "array[int]"
    dst: "array[int]"
    sport: "array[int]"
    dport: "array[int]"
    seq: "array[int]"
    tcpflags: "array[int]"
    pay_off: "array[int]"
    pay_len: "array[int]"
    tok: "array[int]"
    flow_hash: "array[int]"

    def __init__(
        self,
        buffer: bytes,
        columns: dict[str, array],
        quarantined: list[BaseException] | None = None,
    ) -> None:
        self.buffer = buffer
        self.quarantined: list[BaseException] = quarantined if quarantined is not None else []
        self._view: memoryview | None = None
        for name, typecode in _COLUMNS:
            column = columns.get(name)
            if column is None:
                column = array(typecode)
            setattr(self, name, column)

    # -- basic protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.ts)

    def __bool__(self) -> bool:
        return len(self.ts) > 0

    @property
    def view(self) -> memoryview:
        """Lazily (re)built memoryview of the shared capture buffer."""
        view = self._view
        if view is None:
            view = memoryview(self.buffer)
            self._view = view
        return view

    @property
    def first_ts(self) -> float:
        return self.ts[0]

    @property
    def last_ts(self) -> float:
        return self.ts[-1]

    def columns(self) -> dict[str, array]:
        return {name: getattr(self, name) for name in _COLUMN_NAMES}

    # -- pickling (SD103: no memoryviews cross process boundaries) -----

    def __getstate__(self) -> dict[str, object]:
        state: dict[str, object] = {"buffer": self.buffer}
        for name in _COLUMN_NAMES:
            state[name] = getattr(self, name)
        # Quarantined exceptions are absorbed feeder-side before a batch
        # is routed; never ship them to workers.
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        self.buffer = state["buffer"]  # type: ignore[assignment]
        self.quarantined = []
        self._view = None
        for name in _COLUMN_NAMES:
            setattr(self, name, state[name])

    # -- row access ----------------------------------------------------

    def materialize(self, row: int) -> TimedPacket:
        """Build the full packet object for one row (the slow minority)."""
        off = self.off[row]
        raw = self.buffer[off : off + self.caplen[row]]
        return TimedPacket(self.ts[row], IPv4Packet.parse(raw))

    def payload_view(self, row: int) -> memoryview:
        """Zero-copy view of a row's transport payload."""
        start = self.pay_off[row]
        return self.view[start : start + self.pay_len[row]]

    # -- slicing -------------------------------------------------------

    def select(self, rows: Sequence[int]) -> "PacketBatch":
        """New batch of the given rows, sharing this batch's buffer."""
        columns: dict[str, array] = {}
        for name, typecode in _COLUMNS:
            source = getattr(self, name)
            columns[name] = array(typecode, [source[row] for row in rows])
        return PacketBatch(self.buffer, columns)

    def slice(self, start: int, stop: int) -> "PacketBatch":
        """Contiguous row range as a new batch sharing this buffer."""
        columns: dict[str, array] = {}
        for name, _ in _COLUMNS:
            columns[name] = getattr(self, name)[start:stop]
        return PacketBatch(self.buffer, columns)

    def compact(self) -> "PacketBatch":
        """Copy just the referenced record bytes into a fresh buffer.

        Required before pickling a selection to a worker: a selection
        shares the whole capture buffer, and shipping that per shard
        would multiply the file size by the worker count.
        """
        pieces: list[bytes] = []
        new_off = array("Q")
        new_pay_off = array("Q")
        cursor = 0
        buffer = self.buffer
        for row in range(len(self)):
            off = self.off[row]
            caplen = self.caplen[row]
            pieces.append(buffer[off : off + caplen])
            new_off.append(cursor)
            # pay_off == 0 is the "no decoded payload" sentinel (tok==0
            # or non-transport row); it must survive the shift as-is.
            old_pay = self.pay_off[row]
            new_pay_off.append(old_pay - off + cursor if old_pay else 0)
            cursor += caplen
        columns = self.columns()
        columns["off"] = new_off
        columns["pay_off"] = new_pay_off
        return PacketBatch(b"".join(pieces), columns)

    # -- shard routing -------------------------------------------------

    def shard_rows(self, router: "ShardRouter") -> list[list[int]]:
        """Row indices per shard, matching ``ShardRouter.shard_of``.

        Non-TCP/UDP rows pin to shard 0; fragments hash the port-less
        address pair; everything else follows the router's policy.  The
        port-less hash comes straight off the precomputed
        :attr:`flow_hash` column.
        """
        from ..runtime.sharding import ShardPolicy

        shards = router.shards
        buckets: list[list[int]] = [[] for _ in range(shards)]
        if shards == 1:
            buckets[0] = list(range(len(self)))
            return buckets
        tuple5 = router.policy is ShardPolicy.TUPLE5
        proto = self.proto
        fragflags = self.fragflags
        flow_hash = self.flow_hash
        for row in range(len(self)):
            p = proto[row]
            if p != IP_PROTO_TCP and p != IP_PROTO_UDP:
                buckets[0].append(row)
            elif tuple5 and not (fragflags[row] & 0x3FFF):
                digest = _tuple5_flow_hash(
                    self.src[row], self.dst[row], self.sport[row], self.dport[row], p
                )
                buckets[digest % shards].append(row)
            else:
                buckets[flow_hash[row] % shards].append(row)
        return buckets


class PacketBatchBuilder:
    """Append-oriented accumulator the columnar reader fills row by row."""

    __slots__ = ("columns", "quarantined")

    def __init__(self) -> None:
        self.columns: dict[str, array] = {
            name: array(typecode) for name, typecode in _COLUMNS
        }
        self.quarantined: list[BaseException] = []

    def __len__(self) -> int:
        return len(self.columns["ts"])

    def append(
        self,
        ts: float,
        off: int,
        caplen: int,
        proto: int,
        fragflags: int,
        ttl: int,
        src: int,
        dst: int,
        sport: int,
        dport: int,
        seq: int,
        tcpflags: int,
        pay_off: int,
        pay_len: int,
        tok: int,
        flow_hash: int,
    ) -> None:
        columns = self.columns
        columns["ts"].append(ts)
        columns["off"].append(off)
        columns["caplen"].append(caplen)
        columns["proto"].append(proto)
        columns["fragflags"].append(fragflags)
        columns["ttl"].append(ttl)
        columns["src"].append(src)
        columns["dst"].append(dst)
        columns["sport"].append(sport)
        columns["dport"].append(dport)
        columns["seq"].append(seq)
        columns["tcpflags"].append(tcpflags)
        columns["pay_off"].append(pay_off)
        columns["pay_len"].append(pay_len)
        columns["tok"].append(tok)
        columns["flow_hash"].append(flow_hash)

    def extend_lists(self, rows: dict[str, Iterable[int | float]]) -> None:
        """Bulk-append pre-decoded column slices (the numpy path)."""
        for name, values in rows.items():
            self.columns[name].extend(values)  # type: ignore[arg-type]

    def build(self, buffer: bytes) -> PacketBatch:
        batch = PacketBatch(buffer, self.columns, self.quarantined)
        self.columns = {name: array(typecode) for name, typecode in _COLUMNS}
        self.quarantined = []
        return batch
