"""Processing-cost and throughput model (the paper's 20 Gbps accounting).

The paper's feasibility argument is not a testbed measurement; it counts
memory references -- the binding resource at line rate -- and asks what
they cost given where the required state can live.  We reproduce exactly
that accounting:

- Scanning one payload byte costs one automaton-transition reference.
- Conventional reassembly additionally *copies* every byte through a
  reassembly buffer (one write + one read) and touches a large per-flow
  record per packet.
- The fast path touches a 24-byte record per packet and does nothing
  else per byte.
- State that fits the on-chip SRAM budget is charged SRAM latency;
  otherwise DRAM latency.  This is where the 10x state reduction turns
  into a throughput win: conventional per-flow state for 1M connections
  cannot fit on chip.

Throughput is then ``8 bits / (ns per byte)`` Gbps.  The absolute
numbers depend on the hardware constants; the *ratio* between the two
architectures is the reproducible claim.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Memory references a conventional IPS spends per payload byte:
#: automaton transition (1) + copy into reassembly buffer (1) + read back
#: out of the buffer for scanning (1).
CONVENTIONAL_REFS_PER_BYTE = 3.0

#: References the Split-Detect fast path spends per payload byte: the
#: automaton transition only.
FASTPATH_REFS_PER_BYTE = 1.0

#: Per-packet record touches: a conventional flow record (reassembly
#: pointers, normalization state, timers) spans several cache lines.
CONVENTIONAL_REFS_PER_PACKET = 4.0
FASTPATH_REFS_PER_PACKET = 1.0


@dataclass(frozen=True)
class HardwareModel:
    """Cost constants for one hypothetical line card."""

    sram_ns: float = 1.25
    """Fast-memory access time (on-chip SRAM / on-package RLDRAM, pipelined)."""

    dram_ns: float = 8.0
    """Commodity DRAM random access, bank-interleaved."""

    sram_budget_bytes: int = 64 * 2**20
    """How much per-flow state fits in fast memory.  48 MB (1M connections
    of Split-Detect fast-path state) fits; the conventional IPS's ~4 GB of
    provisioned reassembly state cannot -- that asymmetry is the paper's
    architectural argument."""

    overlap_factor: float = 4.0
    """Memory-level parallelism: how many references a pipelined, banked
    implementation keeps in flight.  Divides effective per-reference time;
    applies equally to both architectures, so it scales absolute Gbps
    without touching the conventional-vs-Split-Detect ratio."""

    def ref_ns(self, state_bytes: int) -> float:
        """Effective time per state reference given the state footprint."""
        raw = self.sram_ns if state_bytes <= self.sram_budget_bytes else self.dram_ns
        return raw / self.overlap_factor


@dataclass(frozen=True)
class CostReport:
    """Memory-reference accounting for one workload through one engine."""

    label: str
    payload_bytes: int
    packets: int
    refs_per_byte: float
    refs_per_packet: float
    state_bytes: int
    memory: str
    ns_per_byte: float
    gbps: float

    def row(self) -> str:
        return (
            f"{self.label:<22} {self.payload_bytes:>12} {self.refs_per_byte:>9.2f} "
            f"{self.state_bytes:>12} {self.memory:>5} {self.ns_per_byte:>9.3f} {self.gbps:>8.1f}"
        )


def cost_report(
    label: str,
    *,
    payload_bytes: int,
    packets: int,
    refs_per_byte: float,
    refs_per_packet: float,
    state_bytes: int,
    hardware: HardwareModel | None = None,
) -> CostReport:
    """Assemble the throughput estimate for one engine/workload pair."""
    hardware = hardware or HardwareModel()
    ref_ns = hardware.ref_ns(state_bytes)
    mean_packet = payload_bytes / packets if packets else 1.0
    per_byte_refs = refs_per_byte + (refs_per_packet / mean_packet if mean_packet else 0)
    ns_per_byte = per_byte_refs * ref_ns
    gbps = 8.0 / ns_per_byte if ns_per_byte else float("inf")
    return CostReport(
        label=label,
        payload_bytes=payload_bytes,
        packets=packets,
        refs_per_byte=refs_per_byte,
        refs_per_packet=refs_per_packet,
        state_bytes=state_bytes,
        memory="SRAM" if state_bytes <= hardware.sram_budget_bytes else "DRAM",
        ns_per_byte=ns_per_byte,
        gbps=gbps,
    )


def conventional_cost(
    payload_bytes: int, packets: int, state_bytes: int, hardware: HardwareModel | None = None
) -> CostReport:
    """Cost of running everything through reassembly + normalization."""
    return cost_report(
        "conventional",
        payload_bytes=payload_bytes,
        packets=packets,
        refs_per_byte=CONVENTIONAL_REFS_PER_BYTE,
        refs_per_packet=CONVENTIONAL_REFS_PER_PACKET,
        state_bytes=state_bytes,
        hardware=hardware,
    )


def split_detect_cost(
    fast_bytes: int,
    fast_packets: int,
    slow_bytes: int,
    slow_packets: int,
    fast_state_bytes: int,
    slow_state_bytes: int,
    hardware: HardwareModel | None = None,
) -> tuple[CostReport, CostReport, CostReport]:
    """Cost of the two Split-Detect paths plus their traffic-weighted blend.

    The fast path is sized for line rate; the slow path handles only the
    diverted fraction.  The blended report answers "what does one
    arriving byte cost on average", which is what provisioned throughput
    follows.
    """
    hardware = hardware or HardwareModel()
    fast = cost_report(
        "split-detect fast",
        payload_bytes=fast_bytes,
        packets=max(fast_packets, 1),
        refs_per_byte=FASTPATH_REFS_PER_BYTE,
        refs_per_packet=FASTPATH_REFS_PER_PACKET,
        state_bytes=fast_state_bytes,
        hardware=hardware,
    )
    slow = cost_report(
        "split-detect slow",
        payload_bytes=slow_bytes,
        packets=max(slow_packets, 1),
        refs_per_byte=CONVENTIONAL_REFS_PER_BYTE,
        refs_per_packet=CONVENTIONAL_REFS_PER_PACKET,
        state_bytes=slow_state_bytes,
        hardware=hardware,
    )
    total_bytes = fast_bytes + slow_bytes
    blend_ns = (
        (fast.ns_per_byte * fast_bytes + slow.ns_per_byte * slow_bytes) / total_bytes
        if total_bytes
        else fast.ns_per_byte
    )
    blended = CostReport(
        label="split-detect blended",
        payload_bytes=total_bytes,
        packets=fast_packets + slow_packets,
        refs_per_byte=(
            (FASTPATH_REFS_PER_BYTE * fast_bytes + CONVENTIONAL_REFS_PER_BYTE * slow_bytes)
            / total_bytes
            if total_bytes
            else FASTPATH_REFS_PER_BYTE
        ),
        refs_per_packet=FASTPATH_REFS_PER_PACKET,
        state_bytes=fast_state_bytes + slow_state_bytes,
        memory=fast.memory,
        ns_per_byte=blend_ns,
        gbps=8.0 / blend_ns if blend_ns else float("inf"),
    )
    return fast, slow, blended
