"""Fault recovery gate -- a killed worker must not cost correctness.

Two modes over the same invariants:

- **soak gate** (the pytest test, also the default standalone run): a
  seeded crash in shard 1 mid-gauntlet.  The run must complete, record
  a non-empty degraded interval whose loss accounting closes the
  ``examined + shed + quarantined + lost == input`` identity, keep every
  produced alert inside the serial reference set, leave the untouched
  shards' alert streams byte-identical to serial, and reap every child
  process.
- **chaos mode** (``--chaos N``, run nightly by CI): N random seeded
  :meth:`FaultPlan.random` plans, each held to the same invariants.
  Failing seeds are written to ``benchmarks/results/chaos_failures.json``
  so CI can upload them as an artifact and a human can replay any seed
  with ``--chaos 1 --seed-base <seed>``.

The machine-readable soak results land in ``BENCH_fault_recovery.json``
at the repo root.  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py
    PYTHONPATH=src python benchmarks/bench_fault_recovery.py --chaos 25
"""

import argparse
import json
import multiprocessing as mp
import os
import sys
import traceback
from pathlib import Path

from exp_common import (
    ATTACK_OFFSET,
    ATTACK_SIGNATURE,
    RESULTS_DIR,
    benign_trace,
    emit,
    gauntlet_payload,
    gauntlet_ruleset,
)
from repro.evasion import build_attack
from repro.runtime import (
    EngineSpec,
    FaultPlan,
    ParallelRunner,
    RunnerConfig,
    SerialRunner,
)
from repro.traffic import inject_attacks

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKERS = 2
BATCH_SIZE = 64
TRACE_FLOWS = 120
#: Packet index for the deterministic mid-gauntlet crash (shard-local).
CRASH_AT = 400


def recovery_trace():
    trace = benign_trace(TRACE_FLOWS, seed=2006)
    attacks = [
        build_attack(
            name,
            gauntlet_payload(),
            signature_span=(ATTACK_OFFSET, len(ATTACK_SIGNATURE)),
            src=f"10.66.0.{i + 1}",
            seed=i,
        )
        for i, name in enumerate(["tcp_seg_8", "ip_frag_8", "stealth_segments"])
    ]
    return inject_attacks(trace, attacks)


def make_config(faults: FaultPlan | None = None) -> RunnerConfig:
    """Supervised config with CI-friendly failure-detection latencies."""
    return RunnerConfig(
        batch_size=BATCH_SIZE,
        max_restarts=2,
        restart_backoff=0.01,
        heartbeat_interval=0.05,
        heartbeat_timeout=1.0,
        drain_timeout=30.0,
        faults=faults,
    )


def alert_keys(alerts):
    return {(a.timestamp, str(a.flow), a.sid, a.msg) for a in alerts}


def verify_invariants(report, serial, n_input: int, *, require_degraded: bool) -> None:
    """The degraded-mode contract; raises AssertionError with the hole."""
    accounted = (
        report.packets
        + report.shed_packets
        + report.quarantined_packets
        + report.degraded_packets
    )
    assert accounted == n_input, (
        f"accounting hole: examined={report.packets} shed={report.shed_packets} "
        f"quarantined={report.quarantined_packets} lost={report.degraded_packets} "
        f"!= input={n_input}"
    )
    if require_degraded:
        assert report.degraded, "faulted run recorded no degraded interval"
        assert report.degraded_packets > 0, "degraded interval lost zero packets"
        assert report.worker_restarts >= 1, "supervisor never restarted the worker"
    produced = alert_keys(report.alerts)
    reference = alert_keys(serial.alerts)
    assert produced <= reference, (
        f"degraded run invented {len(produced - reference)} alert(s) "
        "absent from the serial reference"
    )
    # Shards that never degraded must match serial byte-for-byte.
    degraded_shards = {iv.shard for iv in report.degraded}
    quarantined_shards = {s.shard for s in report.shards if s.quarantined}
    ref_by_shard = {s.shard: s.alerts for s in serial.shards}
    for shard_report in report.shards:
        if shard_report.shard in degraded_shards | quarantined_shards:
            continue
        assert shard_report.alerts == ref_by_shard[shard_report.shard], (
            f"untouched shard {shard_report.shard} diverged from serial"
        )
    assert mp.active_children() == [], "run left live child processes"


def run_recovery() -> dict:
    trace = recovery_trace()
    spec = EngineSpec(rules=gauntlet_ruleset())
    serial = SerialRunner(spec, shards=WORKERS, config=make_config()).run(trace)

    plan = FaultPlan.parse([f"crash:shard=1,at={CRASH_AT}"])
    report = ParallelRunner(spec, workers=WORKERS, config=make_config(plan)).run(trace)
    verify_invariants(report, serial, len(trace), require_degraded=True)

    recovered = alert_keys(report.alerts)
    reference = alert_keys(serial.alerts)
    return {
        "trace": {"flows": TRACE_FLOWS, "packets": len(trace)},
        "host": {"cpu_count": os.cpu_count()},
        "workers": WORKERS,
        "fault_plan": plan.describe(),
        "wall_seconds": round(report.wall_seconds, 4),
        "worker_restarts": report.worker_restarts,
        "degraded_intervals": [
            {
                "shard": iv.shard,
                "generation": iv.generation,
                "reason": iv.reason,
                "packets_lost": iv.packets_lost,
                "alerts_salvaged": iv.alerts_salvaged,
            }
            for iv in report.degraded
        ],
        "packets_examined": report.packets,
        "packets_lost": report.degraded_packets,
        "packets_quarantined": report.quarantined_packets,
        "serial_alerts": len(serial.alerts),
        "recovered_alerts": len(report.alerts),
        "alerts_retained_pct": round(100.0 * len(recovered) / max(1, len(reference)), 1),
    }


def check_and_emit(result: dict, capfd=None) -> None:
    (REPO_ROOT / "BENCH_fault_recovery.json").write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        f"trace: {result['trace']['packets']} packets, {result['workers']} workers, "
        f"plan: {result['fault_plan']}",
        f"restarts: {result['worker_restarts']}, "
        f"lost: {result['packets_lost']} packet(s) across "
        f"{len(result['degraded_intervals'])} degraded interval(s)",
        f"alerts: {result['recovered_alerts']}/{result['serial_alerts']} "
        f"({result['alerts_retained_pct']}% of serial reference) "
        f"in {result['wall_seconds']:.2f}s",
    ]
    for iv in result["degraded_intervals"]:
        lines.append(
            f"  shard {iv['shard']} gen {iv['generation']}: {iv['reason']}, "
            f"{iv['packets_lost']} lost, {iv['alerts_salvaged']} alerts salvaged"
        )
    emit("fault_recovery", lines, capfd)
    assert result["worker_restarts"] >= 1
    assert result["degraded_intervals"], "no degraded interval recorded"
    assert result["recovered_alerts"] > 0, "degraded run produced zero alerts"


def run_chaos(count: int, seed_base: int) -> int:
    """Chaos mode: *count* random fault plans, same invariants each run.

    Returns the number of failing seeds; failures (seed, plan,
    traceback) are persisted for artifact upload and replay.
    """
    trace = recovery_trace()
    spec = EngineSpec(rules=gauntlet_ruleset())
    serial = SerialRunner(spec, shards=WORKERS, config=make_config()).run(trace)
    # The flow-hash split is uneven; keep triggers well inside the
    # smallest shard's packet count so plans actually fire.
    max_packet = min(s.stats.packets_total for s in serial.shards) * 3 // 4

    failures = []
    for i in range(count):
        seed = seed_base + i
        plan = FaultPlan.random(seed, shards=WORKERS, max_packet=max_packet)
        try:
            report = ParallelRunner(
                spec, workers=WORKERS, config=make_config(plan)
            ).run(trace)
            verify_invariants(report, serial, len(trace), require_degraded=False)
            print(
                f"seed {seed}: ok ({plan.describe()}; "
                f"restarts={report.worker_restarts} "
                f"lost={report.degraded_packets} "
                f"quarantined={report.quarantined_packets})",
                file=sys.stderr,
            )
        except Exception:
            failures.append(
                {
                    "seed": seed,
                    "plan": plan.describe(),
                    "error": traceback.format_exc(),
                }
            )
            print(f"seed {seed}: FAILED ({plan.describe()})", file=sys.stderr)

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "chaos_failures.json"
    out.write_text(
        json.dumps(
            {"seed_base": seed_base, "count": count, "failures": failures}, indent=2
        )
        + "\n",
        encoding="utf-8",
    )
    print(
        f"chaos: {count - len(failures)}/{count} seeds passed "
        f"(failures recorded in {out})",
        file=sys.stderr,
    )
    return len(failures)


def test_fault_recovery(capfd):
    """Crash mid-gauntlet: run completes, loss accounted, alerts sound.

    Emits BENCH_fault_recovery.json."""
    check_and_emit(run_recovery(), capfd)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--chaos",
        type=int,
        metavar="N",
        help="run N random fault plans instead of the deterministic soak",
    )
    parser.add_argument(
        "--seed-base",
        type=int,
        default=0,
        metavar="SEED",
        help="first chaos seed (seeds are SEED..SEED+N-1)",
    )
    args = parser.parse_args(argv)
    if args.chaos is not None:
        return 1 if run_chaos(args.chaos, args.seed_base) else 0
    check_and_emit(run_recovery())
    print("fault recovery gate passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent))
    raise SystemExit(main())
