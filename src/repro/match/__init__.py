"""String-matching engines: Aho-Corasick, Boyer-Moore-Horspool, naive."""

from .aho_corasick import DENSE_STATE_LIMIT, ROOT_STATE, AhoCorasick
from .dual import DualAutomaton, DualStreamMatcher
from .single import BoyerMooreHorspool, naive_find_all
from .streaming import StreamMatch, StreamMatcher

__all__ = [
    "DENSE_STATE_LIMIT",
    "ROOT_STATE",
    "AhoCorasick",
    "BoyerMooreHorspool",
    "DualAutomaton",
    "DualStreamMatcher",
    "StreamMatch",
    "StreamMatcher",
    "naive_find_all",
]
