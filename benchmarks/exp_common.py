"""Shared machinery for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index).  Conventions:

- Workloads are module-cached so the pytest-benchmark timing loop does
  not re-synthesize traces.
- Every experiment prints its rows through :func:`emit`, which bypasses
  pytest's capture (the rows appear in ``bench_output.txt``) and also
  writes ``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.
- Files are importable and runnable standalone:
  ``python benchmarks/bench_table2_state.py`` prints the same rows.
"""

from __future__ import annotations

import contextlib
import functools
import random
import sys
from pathlib import Path

from repro.core import AlertKind, ConventionalIPS, NaivePacketIPS, SplitDetectIPS
from repro.evasion import STRATEGIES, AttackSpec, build_attack
from repro.signatures import RuleSet, Signature, load_bundled_rules
from repro.traffic import TrafficProfile, generate_trace, inject_attacks

RESULTS_DIR = Path(__file__).resolve().parent / "results"

ATTACK_SIGNATURE = b"EVIL-PAYLOAD\x90\x90\x90\x90:exec/bin/sh"
ATTACK_OFFSET = 120


def emit(experiment: str, lines: list[str], capfd=None) -> None:
    """Print experiment rows (uncaptured) and persist them to results/."""
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n", encoding="utf-8")
    ctx = capfd.disabled() if capfd is not None else contextlib.nullcontext()
    with ctx:
        print(f"\n=== {experiment} ===", file=sys.stderr)
        print(text, file=sys.stderr)


@functools.lru_cache(maxsize=None)
def bundled_rules() -> RuleSet:
    return load_bundled_rules()


@functools.lru_cache(maxsize=4)
def benign_trace(flows: int = 300, seed: int = 2006, **profile_kw):
    profile = TrafficProfile(flows=flows, **dict(profile_kw))
    return generate_trace(profile, seed=seed)


def gauntlet_ruleset() -> RuleSet:
    rules = RuleSet()
    rules.add(Signature(sid=3001, pattern=ATTACK_SIGNATURE, msg="gauntlet target"))
    return rules


def gauntlet_payload() -> bytes:
    body = bytearray(b"Content-Filler: benign web traffic padding / " * 30)
    body[ATTACK_OFFSET : ATTACK_OFFSET + len(ATTACK_SIGNATURE)] = ATTACK_SIGNATURE
    return bytes(body)


def attack_packets(strategy_name: str, *, seed: int = 11, **conn):
    strategy = STRATEGIES[strategy_name]
    spec = AttackSpec(
        payload=gauntlet_payload(),
        rng=random.Random(seed),
        conn=conn,
        signature_span=(ATTACK_OFFSET, len(ATTACK_SIGNATURE)),
    )
    return strategy.build(spec)


def detected(alerts, sid=3001) -> bool:
    return any(
        (a.kind in (AlertKind.SIGNATURE, AlertKind.PARTIAL_SIGNATURE) and a.sid == sid)
        or a.kind is AlertKind.AMBIGUITY
        for a in alerts
    )


def run_engine(engine, packets):
    alerts = []
    for packet in packets:
        alerts.extend(engine.process(packet))
    return alerts


@functools.lru_cache(maxsize=2)
def mixed_trace(flows: int = 300, seed: int = 2006):
    """Benign trace with three catalog attacks hidden in it."""
    trace = benign_trace(flows, seed)
    attacks = [
        build_attack(
            name,
            gauntlet_payload(),
            signature_span=(ATTACK_OFFSET, len(ATTACK_SIGNATURE)),
            src=f"10.66.0.{i + 1}",
            seed=i,
        )
        for i, name in enumerate(["tcp_seg_8", "ip_frag_8", "stealth_segments"])
    ]
    return inject_attacks(trace, attacks)
