"""Inline suppression pragmas.

Two forms, both comments so they survive formatters:

- ``# splitcheck: ignore[SD101]`` on the flagged line suppresses the
  named rule(s) there (comma-separate for several); bare
  ``# splitcheck: ignore`` suppresses every rule on that line.
- ``# splitcheck: skip-file`` anywhere in the first ten lines exempts
  the whole file (reserved for generated code; prefer line pragmas).

Pragmas beat baselines for *intentional* exceptions: they sit next to
the code they excuse, travel with it through moves, and show up in
review diffs.  The baseline is only for grandfathered findings.
"""

from __future__ import annotations

import re

__all__ = ["PragmaIndex"]

_PRAGMA = re.compile(r"#\s*splitcheck:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")
_SKIP_FILE = re.compile(r"#\s*splitcheck:\s*skip-file")

#: Only the head of the file may carry ``skip-file`` -- a buried pragma
#: that silently exempts 500 lines is exactly the kind of invisible
#: convention this tool exists to kill.
_SKIP_FILE_WINDOW = 10


class PragmaIndex:
    """Per-file map of suppression comments, built once per scan."""

    def __init__(self, source: str) -> None:
        self.skip_file = False
        # line -> None (ignore everything) or the set of ignored rule ids
        self._by_line: dict[int, frozenset[str] | None] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "splitcheck" not in text:
                continue
            if lineno <= _SKIP_FILE_WINDOW and _SKIP_FILE.search(text):
                self.skip_file = True
            match = _PRAGMA.search(text)
            if match is None:
                continue
            codes = match.group(1)
            if codes is None:
                self._by_line[lineno] = None
            else:
                self._by_line[lineno] = frozenset(
                    code.strip().upper() for code in codes.split(",") if code.strip()
                )

    def ignores(self, line: int, rule: str) -> bool:
        """True when a pragma on ``line`` suppresses ``rule``."""
        if line not in self._by_line:
            return False
        codes = self._by_line[line]
        return codes is None or rule.upper() in codes
