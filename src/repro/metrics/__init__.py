"""State accounting, processing cost model, and run harness."""

from .cost import (
    CONVENTIONAL_REFS_PER_BYTE,
    CONVENTIONAL_REFS_PER_PACKET,
    FASTPATH_REFS_PER_BYTE,
    FASTPATH_REFS_PER_PACKET,
    CostReport,
    HardwareModel,
    conventional_cost,
    cost_report,
    split_detect_cost,
)
from .report import (
    PROVISIONED_BUFFER_PER_FLOW,
    RunReport,
    extrapolate_state,
    provisioned_conventional_state,
    provisioned_fastpath_state,
    run_conventional,
    run_split_detect,
    run_split_detect_columnar,
    state_bytes_ratio,
    state_per_flow,
    throughput_comparison,
)

__all__ = [
    "CONVENTIONAL_REFS_PER_BYTE",
    "CONVENTIONAL_REFS_PER_PACKET",
    "CostReport",
    "FASTPATH_REFS_PER_BYTE",
    "FASTPATH_REFS_PER_PACKET",
    "HardwareModel",
    "PROVISIONED_BUFFER_PER_FLOW",
    "RunReport",
    "conventional_cost",
    "cost_report",
    "extrapolate_state",
    "provisioned_conventional_state",
    "provisioned_fastpath_state",
    "run_conventional",
    "run_split_detect",
    "run_split_detect_columnar",
    "split_detect_cost",
    "state_bytes_ratio",
    "state_per_flow",
    "throughput_comparison",
]
