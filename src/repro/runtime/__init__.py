"""Sharded parallel runtime: flow-hashed shared-nothing engine shards.

The paper argues Split-Detect is feasible at 20 Gbps; one Python process
is not.  This package provides the standard scale-out recipe (the
RSS-style design of multi-queue NICs and DPDK pipelines): a
flow-consistent hash partitions traffic across N independent
:class:`~repro.core.SplitDetectIPS` shards, each owning all state for
its flows, and a merge layer reassembles one deterministic report.

Quick tour::

    from repro.runtime import EngineSpec, ParallelRunner, RunnerConfig

    spec = EngineSpec(rules=load_bundled_rules())
    runner = ParallelRunner(spec, workers=4,
                            config=RunnerConfig(telemetry=True))
    report = runner.run(read_trace("big.pcap"))   # streams lazily
    print(report.alerts[:10], report.digest())

- :mod:`~repro.runtime.sharding` -- the symmetric FNV-1a flow hash and
  the fragmentation-safe default shard key;
- :class:`SerialRunner` -- same router + merge, one thread, for tests
  and bit-for-bit comparison against :class:`ParallelRunner`;
- :class:`ParallelRunner` -- multiprocessing workers behind bounded
  queues with block/shed backpressure and graceful drain; with
  ``RunnerConfig(max_restarts=N)`` it supervises workers (heartbeats,
  restart with fresh engine, explicit :class:`DegradedInterval` loss
  accounting) instead of failing fast;
- :mod:`~repro.runtime.faults` -- deterministic, seed-driven fault
  injection (``RunnerConfig(faults=...)`` / the CLI ``--inject`` flag);
- :mod:`~repro.runtime.quarantine` -- malformed frames are counted per
  cause and dropped at the decode boundary, never raised;
- :mod:`~repro.runtime.report` -- deterministic alert ordering, summed
  counters, merged telemetry, and the equivalence digest.
"""

from .batching import iter_batches, iter_batches_with_controls, rebatch_columns
from .config import Backpressure, RunnerConfig
from .control import ControlMessage
from .faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from .parallel import ParallelRunner, WorkerFailure
from .quarantine import DECODE_ERRORS, Quarantine, decode_packets
from .report import (
    DegradedInterval,
    RuntimeReport,
    ShardDelta,
    ShardReport,
    alert_sort_key,
    equivalence_digest,
    merge_shard_reports,
)
from .serial import SerialRunner
from .sharding import ShardPolicy, ShardRouter, shard_key_bytes
from .spec import EngineSpec
from .worker import ShardProcessor

__all__ = [
    "DECODE_ERRORS",
    "Backpressure",
    "ControlMessage",
    "DegradedInterval",
    "EngineSpec",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "ParallelRunner",
    "Quarantine",
    "RunnerConfig",
    "RuntimeReport",
    "SerialRunner",
    "ShardDelta",
    "ShardPolicy",
    "ShardProcessor",
    "ShardReport",
    "ShardRouter",
    "WorkerFailure",
    "alert_sort_key",
    "decode_packets",
    "equivalence_digest",
    "iter_batches",
    "iter_batches_with_controls",
    "merge_shard_reports",
    "rebatch_columns",
    "shard_key_bytes",
]
