#!/usr/bin/env python3
"""Capacity planning with the cost model: where does each design break?

Sweeps the connection count and the memory technology and prints the
achievable line rate for a conventional IPS vs the Split-Detect fast
path.  This reproduces the reasoning behind the paper's "reasonable cost
implementations at 20 Gbps" claim without any packets at all -- it is a
pure memory-reference accounting exercise.

Run:  python examples/capacity_planning.py
"""

from repro.metrics import (
    HardwareModel,
    conventional_cost,
    provisioned_conventional_state,
    provisioned_fastpath_state,
    split_detect_cost,
)

WORKLOAD_BYTES = 10**9
MEAN_PACKET = 700
DIVERTED_BYTE_FRACTION = 0.02  # measured low-single-digit on benign traces


def main() -> None:
    packets = WORKLOAD_BYTES // MEAN_PACKET
    slow_bytes = int(WORKLOAD_BYTES * DIVERTED_BYTE_FRACTION)
    print(f"{'connections':>12} {'conv state':>12} {'conv Gbps':>10} "
          f"{'fast state':>12} {'fast Gbps':>10} {'blended':>9}")
    for connections in (10_000, 100_000, 500_000, 1_000_000, 4_000_000):
        hardware = HardwareModel()
        conv = conventional_cost(
            WORKLOAD_BYTES, packets, provisioned_conventional_state(connections), hardware
        )
        fast, _slow, blended = split_detect_cost(
            WORKLOAD_BYTES - slow_bytes,
            packets,
            slow_bytes,
            max(1, int(packets * DIVERTED_BYTE_FRACTION)),
            provisioned_fastpath_state(connections),
            provisioned_conventional_state(max(1, connections // 50)),
            hardware,
        )
        print(
            f"{connections:>12,} {conv.state_bytes:>12,} {conv.gbps:>10.1f} "
            f"{fast.state_bytes:>12,} {fast.gbps:>10.1f} {blended.gbps:>9.1f}"
        )

    print("\nsensitivity: fast-memory budget (how much state fits on package)")
    print(f"{'budget MiB':>10} {'conv Gbps':>10} {'fast Gbps':>10}")
    for budget_mib in (8, 16, 32, 64, 128):
        hardware = HardwareModel(sram_budget_bytes=budget_mib * 2**20)
        conv = conventional_cost(
            WORKLOAD_BYTES, packets, provisioned_conventional_state(), hardware
        )
        fast, _, _ = split_detect_cost(
            WORKLOAD_BYTES, packets, 0, 0, provisioned_fastpath_state(), 0, hardware
        )
        print(f"{budget_mib:>10} {conv.gbps:>10.1f} {fast.gbps:>10.1f}")
    print("\nthe crossover: 48 MB of fast-path state fits on package; the")
    print("conventional design's gigabytes of reassembly buffers never do.")


if __name__ == "__main__":
    main()
