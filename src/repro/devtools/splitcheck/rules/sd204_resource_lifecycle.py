"""SD204: acquired OS resources are released on every path.

Invariant (PR 3/PR 8): the runtime and service layers own sockets,
worker ``Process``es, multiprocessing ``Queue``s, and capture file
handles.  A handle that leaks on an early return -- or an object parked
on ``self`` with no close anywhere in its class -- is a slow death for a
long-running inline service: fd exhaustion looks exactly like packet
loss, and the shedding layer will happily mask it until the box tips.

Facts (:mod:`..facts`) are deliberately lenient: ``with`` blocks,
escapes into other callables (ownership transfer, e.g. queues handed to
``_reap``), returned handles, and comprehension-built pools all pass.
What gets flagged: a discarded acquisition, a local never closed at all,
a close that an earlier ``return`` can skip (not in ``finally``), and a
``self.<attr>`` acquisition whose class never closes or forwards that
attribute.
"""

from __future__ import annotations

from ..project import ProjectContext, ProjectRule, register

__all__ = ["ResourceLifecycleRule"]


@register
class ResourceLifecycleRule(ProjectRule):
    id = "SD204"
    title = "resource acquired without a release on every path"
    default_paths = (
        "*/repro/runtime/*.py",
        "*/repro/service/*.py",
    )

    def check_project(self, ctx: ProjectContext) -> None:
        for facts in ctx.facts():
            for res in facts.resources:
                kind = res["kind"]
                scope = res["scope"]
                where = (facts.path, res["lineno"], res["col"])
                if res["disposition"] == "discarded":
                    ctx.report(
                        self,
                        *where,
                        f"{kind} acquired in {scope} and immediately "
                        "discarded; bind it and close it, or use `with`",
                    )
                elif res["disposition"] == "local":
                    if res["escape"]:
                        continue  # ownership transferred or returned
                    if not res["closed"]:
                        ctx.report(
                            self,
                            *where,
                            f"{kind} {res['name']!r} acquired in {scope} is "
                            "never closed and never escapes; use `with` or "
                            "close it in `finally`",
                        )
                    elif res["leaky_return"]:
                        ctx.report(
                            self,
                            *where,
                            f"{kind} {res['name']!r} acquired in {scope} can "
                            "leak: a `return` precedes the close and the "
                            "close is not in a `finally` block",
                        )
                elif res["disposition"] == "self":
                    cls = res["cls"]
                    attr = res["attr"]
                    if cls is None or attr is None:
                        continue
                    releases = facts.attr_releases.get(cls, [])
                    if attr not in releases:
                        ctx.report(
                            self,
                            *where,
                            f"{kind} stored on self.{attr} in {scope} but "
                            f"class {cls} never closes or forwards that "
                            "attribute; add a close()/shutdown path",
                        )
