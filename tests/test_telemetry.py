"""Tests for the telemetry subsystem: registry, exporters, engine wiring.

Covers the contracts DESIGN.md's Telemetry section promises: Prometheus
``le`` bucket-edge semantics, label declaration/binding, bounded journal
arithmetic, idempotent registration, exporter round-trips, the no-op
registry, and -- at the engine level -- that per-packet and batched
intake produce identical counters and that ``evict_idle`` returns what
the eviction counters record.
"""

import json
import re

import pytest

from helpers import attack_ruleset, signature_span, attack_payload
from repro.core import ConventionalIPS, NaivePacketIPS, SplitDetectIPS
from repro.evasion import build_attack
from repro.signatures import SplitPolicy
from repro.telemetry import (
    JOURNAL_CAPACITY,
    LATENCY_NS_BUCKETS,
    NULL_REGISTRY,
    EventJournal,
    NullRegistry,
    TelemetryRegistry,
    summarize,
    to_json,
    to_prometheus,
    write_telemetry,
)


class TestCounter:
    def test_unlabeled_inc(self):
        tel = TelemetryRegistry()
        c = tel.counter("repro_test_total", "help text")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_labeled_children_accumulate_independently(self):
        tel = TelemetryRegistry()
        c = tel.counter("repro_test_total", "", label_names=("cause",))
        c.labels(cause="tiny").inc(2)
        c.labels(cause="frag").inc()
        assert c.value_for(cause="tiny") == 2
        assert c.value_for(cause="frag") == 1
        assert c.value == 3  # family value sums children

    def test_bound_child_is_cached(self):
        tel = TelemetryRegistry()
        c = tel.counter("repro_test_total", "", label_names=("cause",))
        assert c.labels(cause="x") is c.labels(cause="x")

    def test_labeled_family_rejects_direct_inc(self):
        tel = TelemetryRegistry()
        c = tel.counter("repro_test_total", "", label_names=("cause",))
        with pytest.raises(ValueError, match="use .labels"):
            c.inc()

    def test_undeclared_label_rejected(self):
        tel = TelemetryRegistry()
        c = tel.counter("repro_test_total", "", label_names=("cause",))
        with pytest.raises(ValueError, match="do not match"):
            c.labels(reason="x")

    def test_counter_cannot_decrease(self):
        tel = TelemetryRegistry()
        c = tel.counter("repro_test_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)
        with pytest.raises(ValueError, match="cannot decrease"):
            tel.counter("repro_lbl_total", label_names=("a",)).labels(a="1").inc(-2)


class TestGauge:
    def test_set_inc_dec(self):
        tel = TelemetryRegistry()
        g = tel.gauge("repro_test_bytes")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_labeled_gauge(self):
        tel = TelemetryRegistry()
        g = tel.gauge("repro_state_bytes", "", label_names=("component",))
        g.labels(component="fast").set(24)
        g.labels(component="slow").set(4096)
        assert g.value_for(component="fast") == 24
        assert g.value_for(component="slow") == 4096


class TestHistogram:
    def test_value_on_edge_lands_in_that_bucket(self):
        # Prometheus le semantics: observe(edge) counts toward that edge.
        tel = TelemetryRegistry()
        h = tel.histogram("repro_test_ns", buckets=(10.0, 20.0, 30.0))
        child = h.labels() if h.label_names else h._children[()]
        for value in (10.0, 20.0, 30.0):
            h.observe(value)
        assert child.bucket_counts == [1, 1, 1, 0]
        assert child.cumulative() == [1, 2, 3, 3]

    def test_between_edges_and_overflow(self):
        tel = TelemetryRegistry()
        h = tel.histogram("repro_test_ns", buckets=(10.0, 20.0))
        for value in (5, 15, 25, 9999):
            h.observe(value)
        child = h._children[()]
        assert child.bucket_counts == [1, 1, 2]  # last slot is +Inf
        assert child.count == 4
        assert child.sum == 5 + 15 + 25 + 9999

    def test_labeled_histogram_children(self):
        tel = TelemetryRegistry()
        h = tel.histogram(
            "repro_stage_ns", "", label_names=("stage",), buckets=(100.0,)
        )
        h.labels(stage="fast").observe(50)
        h.labels(stage="slow").observe(500)
        assert h.child_for(stage="fast").cumulative() == [1, 1]
        assert h.child_for(stage="slow").cumulative() == [0, 1]
        assert h.count == 2

    def test_edges_must_strictly_increase(self):
        tel = TelemetryRegistry()
        with pytest.raises(ValueError, match="strictly increase"):
            tel.histogram("repro_bad_ns", buckets=(10.0, 10.0))
        with pytest.raises(ValueError, match="strictly increase"):
            tel.histogram("repro_bad2_ns", buckets=(20.0, 10.0))
        with pytest.raises(ValueError, match="at least one"):
            tel.histogram("repro_bad3_ns", buckets=())


class TestJournal:
    def test_truncation_drops_oldest_and_reconciles(self):
        journal = EventJournal(capacity=3)
        for i in range(7):
            journal.record("test", "event", ts=float(i), index=i)
        assert len(journal) == 3
        assert journal.recorded == 7
        assert journal.dropped == 4
        assert len(journal) + journal.dropped == journal.recorded
        assert [e["index"] for e in journal.events()] == [4, 5, 6]

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            EventJournal(capacity=0)

    def test_default_capacity(self):
        assert TelemetryRegistry().journal.capacity == JOURNAL_CAPACITY

    def test_record_fields_preserved(self):
        journal = EventJournal()
        journal.record("engine", "divert", ts=1.5, flow="a->b", reason="tiny")
        (event,) = journal.events()
        assert event == {
            "ts": 1.5,
            "subsystem": "engine",
            "event": "divert",
            "flow": "a->b",
            "reason": "tiny",
        }


class TestRegistry:
    def test_reregistration_returns_same_family(self):
        tel = TelemetryRegistry()
        a = tel.counter("repro_x_total", "first")
        b = tel.counter("repro_x_total", "second")
        assert a is b

    def test_kind_mismatch_rejected(self):
        tel = TelemetryRegistry()
        tel.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            tel.gauge("repro_x_total")

    def test_label_mismatch_rejected(self):
        tel = TelemetryRegistry()
        tel.counter("repro_x_total", label_names=("a",))
        with pytest.raises(ValueError, match="already registered with labels"):
            tel.counter("repro_x_total", label_names=("b",))

    def test_bucket_mismatch_rejected(self):
        tel = TelemetryRegistry()
        tel.histogram("repro_x_ns", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            tel.histogram("repro_x_ns", buckets=(1.0, 3.0))
        # Same buckets is fine (idempotent).
        assert tel.histogram("repro_x_ns", buckets=(1.0, 2.0)) is tel.get("repro_x_ns")

    def test_get_and_metrics_sorted(self):
        tel = TelemetryRegistry()
        tel.counter("repro_b_total")
        tel.gauge("repro_a_bytes")
        assert [m.name for m in tel.metrics()] == ["repro_a_bytes", "repro_b_total"]
        assert tel.get("repro_missing") is None


class TestNullRegistry:
    def test_disabled_and_shared_instrument(self):
        assert NULL_REGISTRY.enabled is False
        c = NULL_REGISTRY.counter("repro_anything_total", label_names=("x",))
        assert c.labels(x="1") is c  # one singleton impersonates everything
        c.inc()
        c.observe(5)
        c.set(3)
        c.dec()
        assert c.value == 0
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.metrics() == []

    def test_null_journal_is_inert(self):
        NULL_REGISTRY.journal.record("engine", "divert", ts=1.0)
        assert len(NULL_REGISTRY.journal) == 0
        assert NULL_REGISTRY.journal.events() == []

    def test_fresh_instances_also_disabled(self):
        assert NullRegistry().enabled is False


def populated_registry() -> TelemetryRegistry:
    tel = TelemetryRegistry()
    c = tel.counter("repro_t_anomaly_total", "anomalies", label_names=("cause",))
    c.labels(cause="tiny_segment").inc(3)
    c.labels(cause="piece_match").inc()
    tel.gauge("repro_t_state_bytes", "state").set(1234.5)
    h = tel.histogram("repro_t_latency_ns", "latency", buckets=(10.0, 100.0))
    for value in (5, 50, 500):
        h.observe(value)
    tel.journal.record("engine", "divert", ts=2.0, reason="tiny_segment")
    return tel


class TestExporters:
    def test_json_round_trip_matches_snapshot(self):
        tel = populated_registry()
        parsed = json.loads(to_json(tel))
        assert parsed == json.loads(json.dumps(tel.snapshot()))
        counter = parsed["counters"]["repro_t_anomaly_total"]
        assert {"labels": {"cause": "tiny_segment"}, "value": 3} in counter["values"]
        hist = parsed["histograms"]["repro_t_latency_ns"]
        assert hist["bucket_edges"] == [10.0, 100.0]
        assert hist["values"][0]["cumulative_counts"] == [1, 2, 3]
        assert parsed["journal"]["events"][0]["reason"] == "tiny_segment"

    def test_prometheus_parses_line_by_line(self):
        text = to_prometheus(populated_registry())
        sample_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"          # metric name
            r'(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})?'  # labels
            r" -?[0-9.e+Inf]+$"                   # value
        )
        lines = text.strip().split("\n")
        assert lines, "exporter emitted nothing"
        for line in lines:
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert sample_re.match(line), f"unparseable sample line: {line!r}"

    def test_prometheus_histogram_series(self):
        text = to_prometheus(populated_registry())
        assert 'repro_t_latency_ns_bucket{le="10"} 1' in text
        assert 'repro_t_latency_ns_bucket{le="100"} 2' in text
        assert 'repro_t_latency_ns_bucket{le="+Inf"} 3' in text
        assert "repro_t_latency_ns_sum 555" in text
        assert "repro_t_latency_ns_count 3" in text

    def test_prometheus_type_headers(self):
        text = to_prometheus(populated_registry())
        assert "# TYPE repro_t_anomaly_total counter" in text
        assert "# TYPE repro_t_state_bytes gauge" in text
        assert "# TYPE repro_t_latency_ns histogram" in text

    def test_label_escaping(self):
        tel = TelemetryRegistry()
        c = tel.counter("repro_t_total", label_names=("msg",))
        c.labels(msg='say "hi"\nback\\slash').inc()
        text = to_prometheus(tel)
        assert r'msg="say \"hi\"\nback\\slash"' in text

    def test_write_telemetry_both_formats(self, tmp_path):
        tel = populated_registry()
        json_path = write_telemetry(tel, tmp_path / "s.json")
        prom_path = write_telemetry(tel, tmp_path / "s.prom", format="prometheus")
        assert json.loads(json_path.read_text())["gauges"]
        assert prom_path.read_text() == to_prometheus(tel)
        with pytest.raises(ValueError, match="unknown telemetry format"):
            write_telemetry(tel, tmp_path / "s.x", format="xml")

    def test_summarize_skips_zero_and_filters(self):
        tel = populated_registry()
        tel.counter("repro_t_never_total", "never fires")
        lines = summarize(tel)
        assert not any("repro_t_never_total" in line for line in lines)
        assert any("repro_t_state_bytes = 1234.5" in line for line in lines)
        only_anomaly = summarize(tel, prefix="repro_t_anomaly")
        assert only_anomaly == [
            'repro_t_anomaly_total{cause="piece_match"} = 1',
            'repro_t_anomaly_total{cause="tiny_segment"} = 3',
        ]


def split_ips(telemetry):
    return SplitDetectIPS(
        attack_ruleset(),
        split_policy=SplitPolicy(piece_length=8),
        telemetry=telemetry,
    )


def sample_trace():
    """Two attack flows (one divertable, one in-order) plus the packets
    interleaved deterministically by the builders."""
    first = build_attack("tcp_seg_8", attack_payload(), signature_span=signature_span())
    second = build_attack(
        "plain", attack_payload(), signature_span=signature_span(), src="10.9.9.10"
    )
    return first + second


def counter_state(tel: TelemetryRegistry) -> dict:
    """Every counter sample in the registry, as comparable plain data."""
    out = {}
    for metric in tel.metrics():
        if metric.kind == "counter":
            out[metric.name] = [
                (labels, value) for labels, value in metric.samples()
            ]
    return out


class TestEngineTelemetry:
    def test_process_and_process_batch_counters_identical(self):
        trace = sample_trace()
        tel_single, tel_batch = TelemetryRegistry(), TelemetryRegistry()
        ips_single, ips_batch = split_ips(tel_single), split_ips(tel_batch)
        alerts_single = [a for p in trace for a in ips_single.process(p)]
        alerts_batch = ips_batch.process_batch(trace)
        assert [str(a) for a in alerts_single] == [str(a) for a in alerts_batch]
        assert counter_state(tel_single) == counter_state(tel_batch)

    def test_diversion_counters_match_engine_stats(self):
        tel = TelemetryRegistry()
        ips = split_ips(tel)
        ips.process_batch(sample_trace())
        diversions = tel.get("repro_engine_diversions_total")
        by_reason = {
            labels["reason"]: value
            for labels, value in diversions.samples()
            if value
        }
        assert by_reason == {
            reason.value: count for reason, count in ips.divert_reasons.items()
        }
        assert diversions.value == ips.stats.diversions

    def test_stage_latency_histogram_observes_all_stages(self):
        tel = TelemetryRegistry()
        ips = split_ips(tel)
        ips.process_batch(sample_trace())
        stage = tel.get("repro_engine_stage_latency_ns")
        observed = {
            labels["stage"]: child.count for labels, child in stage.samples()
        }
        assert observed["decode"] == ips.stats.packets_total
        assert observed["fast_path"] == ips.stats.fast_packets
        assert observed["slow_path"] == ips.stats.slow_packets
        assert observed["ac_prescan"] >= 1  # once per batch

    def test_journal_records_diversions_with_packet_time(self):
        tel = TelemetryRegistry()
        ips = split_ips(tel)
        trace = sample_trace()
        ips.process_batch(trace)
        diverts = [e for e in tel.journal.events() if e["event"] == "divert"]
        assert len(diverts) == ips.stats.diversions
        trace_times = {p.timestamp for p in trace}
        assert all(e["ts"] in trace_times for e in diverts)

    def test_evict_idle_returns_count_matching_counters(self):
        tel = TelemetryRegistry()
        ips = split_ips(tel)
        ips.process_batch(sample_trace())
        evicted = ips.evict_idle(now=1e9)
        assert evicted > 0  # both flows idle far in the past
        evictions = tel.get("repro_engine_evictions_total")
        assert evictions.value == evicted
        sweeps = [e for e in tel.journal.events() if e["event"] == "evict_sweep"]
        assert sweeps
        assert sweeps[-1]["fast_evicted"] + sweeps[-1]["slow_evicted"] == evicted
        # A second sweep finds nothing and is not journaled again.
        assert ips.evict_idle(now=2e9) == 0

    def test_state_ratio_gauge_positive_and_below_one(self):
        tel = TelemetryRegistry()
        ips = split_ips(tel)
        ips.process_batch(sample_trace())
        ips.refresh_telemetry()
        ratio = tel.get("repro_engine_state_bytes_ratio").value
        assert 0 < ratio < 1  # the paper's whole point

    def test_disabled_engine_records_nothing(self):
        ips = split_ips(NULL_REGISTRY)
        alerts = ips.process_batch(sample_trace())
        assert alerts  # detection unaffected
        assert ips.telemetry.snapshot() == {}

    def test_default_is_null_registry(self):
        for engine in (
            SplitDetectIPS(attack_ruleset()),
            ConventionalIPS(attack_ruleset()),
            NaivePacketIPS(attack_ruleset()),
        ):
            assert engine.telemetry is NULL_REGISTRY

    def test_conventional_telemetry(self):
        tel = TelemetryRegistry()
        ips = ConventionalIPS(attack_ruleset(), telemetry=tel)
        trace = sample_trace()
        alerts = [a for p in trace for a in ips.process(p)]
        ips.refresh_telemetry()
        assert tel.get("repro_conventional_packets_total").value == len(trace)
        assert tel.get("repro_conventional_alerts_total").value == len(alerts)
        assert tel.get("repro_conventional_packet_latency_ns").count == len(trace)
        assert (
            tel.get("repro_conventional_normalized_bytes_total").value
            == ips.bytes_normalized
        )

    def test_naive_telemetry_batch_equals_sequential(self):
        trace = sample_trace()
        tel_a, tel_b = TelemetryRegistry(), TelemetryRegistry()
        a = NaivePacketIPS(attack_ruleset(), telemetry=tel_a)
        b = NaivePacketIPS(attack_ruleset(), telemetry=tel_b)
        for packet in trace:
            a.process(packet)
        b.process_batch(trace)
        assert counter_state(tel_a) == counter_state(tel_b)
        assert tel_a.get("repro_naive_bytes_total" ) is None  # naming check
        assert tel_a.get("repro_naive_scanned_bytes_total").value == a.bytes_scanned

    def test_shared_registry_across_engines_aggregates(self):
        tel = TelemetryRegistry()
        first, second = split_ips(tel), split_ips(tel)
        trace = sample_trace()
        first.process_batch(trace)
        packets_after_first = tel.get("repro_engine_packets_total").value
        second.process_batch(trace)
        assert tel.get("repro_engine_packets_total").value == 2 * packets_after_first


class TestRegistryMerge:
    """Registry.merge / merge_snapshots: the sharded runtime's fold."""

    def test_counters_sum(self):
        a, b = TelemetryRegistry(), TelemetryRegistry()
        a.counter("repro_m_total", "h").inc(3)
        b.counter("repro_m_total", "h").inc(4)
        a.counter("repro_labeled_total", "h", ("path",)).labels(path="fast").inc(2)
        b.counter("repro_labeled_total", "h", ("path",)).labels(path="slow").inc(5)
        a.merge(b)
        assert a.get("repro_m_total").value == 7
        labeled = a.get("repro_labeled_total")
        assert labeled.value_for(path="fast") == 2
        assert labeled.value_for(path="slow") == 5

    def test_gauge_merge_modes(self):
        a, b = TelemetryRegistry(), TelemetryRegistry()
        a.gauge("repro_g_max", "h", merge="max").set(3)
        b.gauge("repro_g_max", "h", merge="max").set(9)
        a.gauge("repro_g_sum", "h", merge="sum").set(3)
        b.gauge("repro_g_sum", "h", merge="sum").set(9)
        a.gauge("repro_g_last", "h", merge="last").set(3)
        b.gauge("repro_g_last", "h", merge="last").set(9)
        a.merge(b)
        assert a.get("repro_g_max").value == 9
        assert a.get("repro_g_sum").value == 12
        assert a.get("repro_g_last").value == 9

    def test_gauge_present_only_in_other(self):
        a, b = TelemetryRegistry(), TelemetryRegistry()
        b.gauge("repro_g_new", "h", merge="sum").set(5)
        a.merge(b)
        assert a.get("repro_g_new").value == 5

    def test_histograms_merge_bucketwise(self):
        a, b = TelemetryRegistry(), TelemetryRegistry()
        edges = (1.0, 10.0)
        ha = a.histogram("repro_h", "h", buckets=edges)
        hb = b.histogram("repro_h", "h", buckets=edges)
        for v in (0.5, 5.0):
            ha.observe(v)
        for v in (5.0, 50.0):
            hb.observe(v)
        a.merge(b)
        merged = a.get("repro_h")
        assert merged.count == 4
        assert merged.sum == pytest.approx(60.5)
        child = merged.child_for()
        assert child.cumulative() == [1, 3, 4]

    def test_histogram_edge_mismatch_raises(self):
        a, b = TelemetryRegistry(), TelemetryRegistry()
        a.histogram("repro_h", "h", buckets=(1.0,))
        b.histogram("repro_h", "h", buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_journal_events_carry_over(self):
        a, b = TelemetryRegistry(), TelemetryRegistry()
        b.journal.record("fastpath", "divert", ts=1.0, flow="f")
        a.merge(b)
        assert any(e["event"] == "divert" for e in a.journal.events())

    def test_merge_mode_conflict_rejected(self):
        tel = TelemetryRegistry()
        tel.gauge("repro_g", "h", merge="sum")
        with pytest.raises(ValueError):
            tel.gauge("repro_g", "h", merge="max")
        # None means "no opinion" and must keep the declared mode.
        assert tel.gauge("repro_g", "h").merge == "sum"

    def test_merge_with_null_registry_is_noop(self):
        tel = TelemetryRegistry()
        tel.counter("repro_m_total", "h").inc(2)
        tel.merge(NULL_REGISTRY)
        assert tel.get("repro_m_total").value == 2
        assert NULL_REGISTRY.merge(tel) is NULL_REGISTRY

    def test_merge_snapshots_function(self):
        from repro.telemetry import merge_snapshots

        a, b = TelemetryRegistry(), TelemetryRegistry()
        a.counter("repro_m_total", "h").inc(1)
        b.counter("repro_m_total", "h").inc(2)
        a.gauge("repro_g", "h", merge="max").set(4)
        b.gauge("repro_g", "h", merge="max").set(6)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        counter = merged["counters"]["repro_m_total"]["values"]
        assert counter[0]["value"] == 3
        gauge = merged["gauges"]["repro_g"]["values"]
        assert gauge[0]["value"] == 6
