"""Anomaly events surfaced by the reassembly/normalization layer.

These are exactly the transport-level behaviours Ptacek-Newsham evasions
must exhibit; the Split-Detect fast path treats any of them as grounds to
divert a flow to the slow path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class StreamEvent(enum.Enum):
    """Transport-layer behaviours that indicate possible evasion."""

    OUT_OF_ORDER = "out_of_order"
    """A segment arrived with data beyond the next expected sequence number."""

    RETRANSMISSION = "retransmission"
    """A segment re-sent bytes that were already delivered, with identical data."""

    OVERLAP = "overlap"
    """A segment overlapped buffered or delivered bytes (consistent data)."""

    INCONSISTENT_OVERLAP = "inconsistent_overlap"
    """Overlapping bytes disagreed -- the classic Ptacek-Newsham ambiguity."""

    TINY_SEGMENT = "tiny_segment"
    """A non-final data segment smaller than the configured threshold."""

    TINY_FRAGMENT = "tiny_fragment"
    """An IP fragment smaller than the configured threshold."""

    FRAGMENT_OVERLAP = "fragment_overlap"
    """IP fragments overlapped (consistent or not)."""

    INCONSISTENT_FRAGMENT_OVERLAP = "inconsistent_fragment_overlap"
    """Overlapping IP fragments disagreed on payload bytes."""

    OUT_OF_WINDOW = "out_of_window"
    """Data fell outside the receiver window / reassembly horizon."""

    BUFFER_OVERFLOW = "buffer_overflow"
    """Out-of-order buffering exceeded its memory budget."""

    TTL_ANOMALY = "ttl_anomaly"
    """TTL varied suspiciously within one flow (insertion-attack indicator)."""


@dataclass(frozen=True)
class StreamEventRecord:
    """One anomaly occurrence with enough context to explain an alert."""

    event: StreamEvent
    offset: int
    """Stream offset (TCP) or datagram offset (IP) where the anomaly sits."""

    length: int = 0
    detail: str = ""

    def __str__(self) -> str:
        where = f"@{self.offset}" + (f"+{self.length}" if self.length else "")
        return f"{self.event.value}{where}" + (f" ({self.detail})" if self.detail else "")
