#!/usr/bin/env python3
"""Policy lab: watch one packet sequence mean different things per OS.

The Ptacek-Newsham ambiguity in one screen: a crafted TCP flow whose
overlapping segments reassemble to "ATTACK" on hosts that keep the first
copy and to "attack" (harmless here, but imagine a signature) on hosts
that let rewrites win.  An IPS locked to a single policy is blind to one
of the two realities; Split-Detect diverts the flow on its first
overlapping segment and flags the inconsistency itself.

Run:  python examples/policy_lab.py
"""

from repro.evasion import Seg, Victim, plan_to_packets
from repro.streams import OverlapPolicy

# A flow that sends REAL data while a byte is withheld, rewrites it with
# a decoy, then releases the withheld byte.
REAL = b"/bin/sh#EVIL"
DECOY = b"/tmp/ok#SAFE"

segs = [
    Seg(offset=1, data=REAL[1:]),                 # real bytes, buffered (hole at 0)
    Seg(offset=1, data=DECOY[1:]),                # decoy rewrite of the same range
    Seg(offset=0, data=REAL[:1], fin=True),       # the withheld byte releases all
]
packets = plan_to_packets(segs)


def main() -> None:
    print(f"{'policy':<10} application stream")
    print("-" * 40)
    evil_policies, safe_policies = [], []
    for policy in OverlapPolicy:
        victim = Victim(policy=policy)
        victim.deliver_all(packets)
        stream = victim.stream(victim_flow())
        (evil_policies if stream == REAL else safe_policies).append(policy.value)
        print(f"{policy.value:<10} {stream!r}")

    print()
    print(f"The same packets. {'/'.join(evil_policies)} hosts execute "
          f"{REAL.decode()}; {'/'.join(safe_policies)} hosts see {DECOY.decode()}.")
    print()

    # What Split-Detect does with it:
    from repro.core import SplitDetectIPS
    from repro.signatures import RuleSet, Signature

    rules = RuleSet()
    rules.add(Signature(sid=1, pattern=REAL, msg="evil shell string"))
    ips = SplitDetectIPS(rules)
    alerts = ips.process_batch(packets)
    print("Split-Detect verdict on the same packets:")
    for alert in alerts:
        print(f"  {alert}")
    for diversion in ips.diversions:
        print(f"  diverted: reason={diversion.reason.value} ({diversion.detail})")


def victim_flow():
    from repro.packet import flow_key_of

    return flow_key_of(packets[1].ip)


if __name__ == "__main__":
    main()
