"""Streaming wrapper: carry Aho-Corasick state across stream chunks.

A conventional IPS matches signatures over the *reassembled* stream, so a
signature may straddle arbitrarily many segments.  ``StreamMatcher`` holds
the automaton state plus the running stream offset for one direction of
one flow, and reports matches in absolute stream coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .aho_corasick import ROOT_STATE, AhoCorasick


@dataclass(frozen=True)
class StreamMatch:
    """One pattern occurrence located in stream coordinates."""

    pattern_id: int
    end_offset: int
    """Stream offset just past the last byte of the occurrence."""


class StreamMatcher:
    """Resumable matcher over one byte stream.

    The per-instance state is deliberately tiny -- an automaton state id
    and a byte offset -- because this is exactly the state a conventional
    IPS must keep per flow direction *in addition to* reassembly buffers,
    and the evaluation accounts for it.
    """

    #: Bytes of per-flow control state a hardware implementation would
    #: spend on this object (state id + offset), used by the cost model.
    STATE_BYTES = 8

    def __init__(self, automaton: AhoCorasick) -> None:
        self.automaton = automaton
        self._state = ROOT_STATE
        self._offset = 0

    @property
    def stream_offset(self) -> int:
        """How many stream bytes have been scanned so far."""
        return self._offset

    @property
    def open_prefix_len(self) -> int:
        """Length of the longest pattern prefix ending exactly at the
        stream tail.  Zero means no pattern occurrence can straddle this
        point -- the safety condition for handing the stream off to a
        different matcher."""
        return self.automaton.state_depth(self._state)

    def feed(self, chunk: bytes) -> list[StreamMatch]:
        """Scan the next contiguous chunk of the stream."""
        state, matches = self.automaton.scan(chunk, self._state)
        base = self._offset
        self._state = state
        self._offset += len(chunk)
        return [StreamMatch(pid, base + end) for pid, end in matches]

    def scan_many(self, chunks: list[bytes]) -> list[list[StreamMatch]]:
        """Batched :meth:`feed`: consume consecutive stream chunks in one
        call, carrying state across them; one result list per chunk."""
        scan = self.automaton.scan
        state = self._state
        base = self._offset
        results: list[list[StreamMatch]] = []
        for chunk in chunks:
            state, matches = scan(chunk, state)
            results.append([StreamMatch(pid, base + end) for pid, end in matches])
            base += len(chunk)
        self._state = state
        self._offset = base
        return results

    def reset(self) -> None:
        """Forget carried state (e.g. after a stream gap is declared lost)."""
        self._state = ROOT_STATE
