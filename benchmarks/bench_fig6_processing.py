"""Figure 6 -- processing cost and the 20 Gbps feasibility argument.

Two parts:

1. Measured byte-flow split: run the mixed trace, record how many bytes
   each path touched, then apply the memory-reference cost model at the
   1M-connection provisioning point.  Shape: the fast path clears
   20 Gbps in fast memory; the conventional design is stuck at DRAM
   speeds; the blend sits near the fast path because diversion is rare.
2. A real software measurement (pytest-benchmark) of the fast path's
   per-byte scan rate, as a sanity anchor for the relative costs.
"""

import dataclasses
import json
import sys
import time
from pathlib import Path

from exp_common import bundled_rules, emit, mixed_trace
from repro.core import ConventionalIPS, SplitDetectIPS
from repro.metrics import (
    run_conventional,
    run_split_detect,
    state_bytes_ratio,
    throughput_comparison,
)
from repro.telemetry import TelemetryRegistry

REPO_ROOT = Path(__file__).resolve().parent.parent


def telemetry_section(rules, trace) -> dict:
    """One instrumented (untimed) run, distilled for BENCH_processing.json:
    per-stage latency totals and ns/byte, the anomaly-trigger breakdown,
    and the live state-ratio gauge."""
    tel = TelemetryRegistry()
    ips = SplitDetectIPS(rules, telemetry=tel)
    report = run_split_detect(ips, trace, sample_every=200)
    stage_hist = tel.get("repro_engine_stage_latency_ns")
    bytes_by_path = {
        "fast": tel.get("repro_engine_bytes_total").value_for(path="fast"),
        "slow": tel.get("repro_engine_bytes_total").value_for(path="slow"),
    }
    stage_bytes = {  # denominator each stage's work scales with
        "decode": bytes_by_path["fast"] + bytes_by_path["slow"],
        "fast_path": bytes_by_path["fast"],
        "ac_prescan": bytes_by_path["fast"],
        "slow_path": bytes_by_path["slow"],
    }
    stages = {}
    for labels, child in stage_hist.samples():
        stage = labels["stage"]
        denominator = stage_bytes.get(stage, 0)
        stages[stage] = {
            "observations": child.count,
            "total_ns": child.sum,
            "ns_per_byte": round(child.sum / denominator, 3) if denominator else None,
        }
    anomalies = {
        labels["cause"]: value
        for labels, value in tel.get("repro_fastpath_anomaly_total").samples()
        if value
    }
    return {
        "stage_latency": stages,
        "anomaly_triggers": anomalies,
        "diversion_byte_fraction": round(
            tel.get("repro_engine_diversion_byte_fraction").value, 6
        ),
        "state_bytes_ratio": round(state_bytes_ratio(report), 6),
        "prefilter_skip_rate": round(
            tel.get("repro_match_prefilter_skip_rate").value, 6
        ),
        "journal_events": tel.journal.recorded,
    }


def table_rows() -> list[str]:
    rules = bundled_rules()
    trace = mixed_trace()
    split_ips = SplitDetectIPS(rules)
    split_report = run_split_detect(split_ips, trace, sample_every=200)
    conv_ips = ConventionalIPS(rules)
    conv_report = run_conventional(conv_ips, trace, sample_every=200)
    lines = [
        f"measured byte split: fast={split_report.fast_bytes:,}  "
        f"slow={split_report.slow_bytes:,}  "
        f"({split_report.diversion_byte_fraction:.1%} diverted)",
        "",
        f"{'engine':<22} {'bytes':>12} {'refs/B':>9} {'state':>12} "
        f"{'mem':>5} {'ns/B':>9} {'Gbps':>8}",
    ]
    rows = throughput_comparison(split_report, conv_report)
    lines.extend(row.row() for row in rows)
    by_label = {row.label: row for row in rows}
    ratio = by_label["split-detect fast"].gbps / by_label["conventional"].gbps
    lines.append("")
    lines.append(
        f"fast-path speedup over conventional: {ratio:.1f}x "
        f"(fast path {'>= 20' if by_label['split-detect fast'].gbps >= 20 else '< 20'} Gbps)"
    )
    return lines


def test_fig6_cost_model(benchmark, capfd):
    rules = bundled_rules()
    trace = mixed_trace()

    def measure():
        split_ips = SplitDetectIPS(rules)
        return run_split_detect(split_ips, trace, sample_every=200)

    split_report = benchmark.pedantic(measure, rounds=2, iterations=1)
    conv_report = run_conventional(ConventionalIPS(rules), trace, sample_every=200)
    rows = throughput_comparison(split_report, conv_report)
    by_label = {row.label: row for row in rows}
    assert by_label["split-detect fast"].gbps >= 20.0
    assert by_label["conventional"].gbps < 10.0
    assert by_label["split-detect blended"].gbps > by_label["conventional"].gbps

    # Software anchor: the same trace driven per-packet vs in batches
    # through process_batch (one fast-path scan sweep per batch).
    def software_mbps(drive) -> float:
        ips = SplitDetectIPS(rules)
        start = time.perf_counter()
        drive(ips)
        elapsed = time.perf_counter() - start
        bytes_seen = ips.stats.fast_bytes_scanned + ips.stats.slow_bytes_normalized
        return bytes_seen / elapsed / 1e6

    per_packet_mbps = software_mbps(
        lambda ips: [ips.process(p) for p in trace]
    )
    batched_mbps = software_mbps(
        lambda ips: [
            ips.process_batch(trace[i : i + 256]) for i in range(0, len(trace), 256)
        ]
    )
    result = {
        "benchmark": "fig6_processing",
        "byte_split": {
            "fast_bytes": split_report.fast_bytes,
            "slow_bytes": split_report.slow_bytes,
            "diversion_byte_fraction": round(split_report.diversion_byte_fraction, 6),
            "diverted_flows": split_report.diverted_flows,
        },
        "cost_model_rows": [dataclasses.asdict(row) for row in rows],
        "software": {
            "per_packet_mbps": round(per_packet_mbps, 3),
            "batched_mbps": round(batched_mbps, 3),
            "batch_size": 256,
        },
        "telemetry": telemetry_section(rules, trace),
    }
    (REPO_ROOT / "BENCH_processing.json").write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    emit("fig6_processing", table_rows(), capfd)


def test_fig6_software_scan_rate(benchmark, capfd):
    """Anchor: the pure-Python fast-path scan rate over one big payload."""
    from repro.core import FastPath
    from repro.signatures import split_ruleset
    from repro.traffic import benign_payload
    import random

    split = split_ruleset(bundled_rules())
    fast = FastPath(split)
    payload = benign_payload(random.Random(5), 100_000)
    automaton = fast.automaton

    result = benchmark(automaton.find_all, payload)
    with capfd.disabled():
        mean_s = benchmark.stats["mean"]
        rate = len(payload) / mean_s / 1e6
        print(
            f"\nfast-path automaton software scan rate: {rate:.2f} MB/s "
            f"(pure Python reference point)",
            file=sys.stderr,
        )


if __name__ == "__main__":
    print("\n".join(table_rows()), file=sys.stderr)
