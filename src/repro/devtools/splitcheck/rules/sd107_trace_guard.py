"""SD107: flight-recorder and journal emission must be guarded.

Invariant (PR 7): the decision tracer follows the same discipline as
the telemetry registry (SD101) -- tracing off costs at most one boolean
check per hot site, which is what keeps the traced-run overhead under
the <=1.15x gate in ``benchmarks/bench_trace_overhead.py``.  Concretely,
any span or journal emission -- a ``.record(...)`` / ``.record_system(...)``
/ ``.event(...)`` call whose receiver names the tracer or journal
(``self.tracer.record(...)``, ``journal.event(...)``) -- inside a
function under ``core/``, ``match/``, or ``runtime/`` must sit behind a
``tel_on``/``enabled``/``trace`` guard, exactly as SD101 demands for
instrument mutations.

SD101 already flags *bare* ``.record(...)`` calls in ``core/`` and
``match/``; this rule adds ``.record_system`` and ``.event`` (which
SD101's instrument set deliberately omits) and extends coverage to
``runtime/``, where the worker loop emits quarantine spans per batch.
Tracer construction and snapshot/merge plumbing run per shard or per
report, not per packet, and share SD101's exemption list.
"""

from __future__ import annotations

import ast

from ..astutil import build_parents, enclosing_function, statement_chain
from ..engine import FileContext, Rule, register
from .sd101_telemetry_guard import EXEMPT_FUNCTIONS, GUARD_TOKENS, _mentions_guard

__all__ = ["TraceGuardRule"]

#: Emission methods on a tracer or journal receiver.
EMIT_METHODS = frozenset({"record", "record_system", "event"})

#: Substrings that mark a receiver as a tracer/journal, not some other
#: object that happens to grow a ``record`` method.
RECEIVER_TOKENS = ("trace", "tracer", "journal")

#: ``trace`` joins the guard vocabulary: ``if self._trace_enabled:`` is
#: the canonical guard, but ``if tracing:`` must count too.
TRACE_GUARD_TOKENS = GUARD_TOKENS + ("trace",)


def _receiver_mentions_tracer(func: ast.Attribute) -> bool:
    """Does the call receiver (``self.tracer`` in ``self.tracer.record``)
    name a tracer or journal anywhere in its attribute chain?"""
    for node in ast.walk(func.value):
        if isinstance(node, ast.Name) and any(
            token in node.id.lower() for token in RECEIVER_TOKENS
        ):
            return True
        if isinstance(node, ast.Attribute) and any(
            token in node.attr.lower() for token in RECEIVER_TOKENS
        ):
            return True
    return False


def _is_emission_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in EMIT_METHODS
        and _receiver_mentions_tracer(node.func)
    )


def _mentions_trace_guard(expr: ast.AST) -> bool:
    if _mentions_guard(expr):
        return True
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "trace" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and "trace" in node.attr.lower():
            return True
    return False


def _terminates(stmts: list[ast.stmt]) -> bool:
    if not stmts:
        return False
    return isinstance(stmts[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


@register
class TraceGuardRule(Rule):
    id = "SD107"
    title = "trace/journal emission not guarded by a trace/enabled check"
    default_paths = (
        "*/repro/core/*.py",
        "*/repro/match/*.py",
        "*/repro/runtime/*.py",
    )

    def check(self, ctx: FileContext) -> None:
        parents = build_parents(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not _is_emission_call(node):
                continue
            function = enclosing_function(node, parents)
            if function is None or function.name in EXEMPT_FUNCTIONS:
                continue
            if self._guarded(node, function, parents):
                continue
            ctx.report(
                self,
                node,
                f"trace emission .{node.func.attr}(...) in "  # type: ignore[attr-defined]
                f"{function.name}() is not under a trace/enabled guard; "
                "span recording must cost one boolean when tracing is off "
                "(PR 7's <=1.15x overhead gate)",
            )

    def _guarded(
        self,
        node: ast.AST,
        function: ast.FunctionDef | ast.AsyncFunctionDef,
        parents: dict[ast.AST, ast.AST],
    ) -> bool:
        # Same two shapes SD101 accepts, with ``trace`` in the guard
        # vocabulary: an enclosing conditional, or an earlier
        # early-return sibling (``if not self._trace_enabled: return``).
        current: ast.AST = node
        while current is not function:
            parent = parents.get(current)
            if parent is None:
                break
            if isinstance(parent, (ast.If, ast.IfExp)) and _mentions_trace_guard(
                parent.test
            ):
                return True
            current = parent
        for body, index in statement_chain(node, parents, stop=function):
            for earlier in body[:index]:
                if (
                    isinstance(earlier, ast.If)
                    and _mentions_trace_guard(earlier.test)
                    and _terminates(earlier.body)
                ):
                    return True
        return False
