"""Classic libpcap savefile reader/writer."""

from .format import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    PcapFormatError,
    PcapHeader,
)
from .io import (
    PcapReader,
    PcapWriter,
    read_records,
    read_trace,
    trace_to_bytes,
    write_trace,
)

__all__ = [
    "LINKTYPE_ETHERNET",
    "LINKTYPE_RAW_IP",
    "PcapFormatError",
    "PcapHeader",
    "PcapReader",
    "PcapWriter",
    "read_records",
    "read_trace",
    "trace_to_bytes",
    "write_trace",
]
