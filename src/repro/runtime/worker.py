"""The per-shard engine loop, shared by the serial and parallel runners.

A :class:`ShardProcessor` owns one engine and turns a stream of routed
batches into a :class:`ShardReport`.  Keeping this logic in one class is
what makes the two runners bit-for-bit comparable: the serial runner
calls :meth:`ShardProcessor.feed` inline, the parallel runner runs the
identical code behind a queue, and both see the same batch boundaries
(the router splits each input batch per shard *before* feeding), so
state sampling and eviction ticks land at the same packet positions.

Worker wire protocol (every message on the results queue is a 4-tuple
``(kind, shard, generation, payload)``):

- ``("hb", s, g, None)``       -- supervised worker with an empty queue,
  proving liveness once per heartbeat interval;
- ``("delta", s, g, ShardDelta)`` -- supervised periodic result flush:
  cumulative counters plus the alerts raised since the previous flush;
- ``("ok", s, g, ShardReport)``   -- final report at drain.  Supervised
  workers send only the unflushed alert tail (the parent reassembles the
  full list from delta chunks); legacy workers send everything;
- ``("error", s, g, traceback)``  -- the engine raised.  A supervised
  worker reports *immediately* and exits (the supervisor restarts it); a
  legacy worker keeps consuming to the sentinel first so the feeder can
  never deadlock against a full queue whose consumer died silently.

Every worker exit path must put a status message first -- enforced
statically by splitcheck rule SD106.  The one exception is an injected
``crash`` (``os._exit`` in :mod:`repro.runtime.faults`), which simulates
the silent death SD106 exists to prevent in our own code.
"""

from __future__ import annotations

import queue as queue_mod
import traceback
from dataclasses import replace
from time import monotonic, process_time_ns
from typing import Any

from ..core import Alert
from ..packet import TimedPacket
from ..packet.batch import PacketBatch
from ..packet.errors import PacketError
from ..telemetry import FlowTracer, TelemetryRegistry
from .config import RunnerConfig
from .control import ControlMessage
from .faults import FaultInjector
from .quarantine import Quarantine
from .report import ShardDelta, ShardReport
from .spec import EngineSpec

__all__ = ["ShardProcessor", "shard_worker_main"]

#: Queue sentinel telling a worker to drain and report.
DRAIN = None


class ShardProcessor:
    """One shard: an engine, its alert log, and its housekeeping clock."""

    def __init__(
        self,
        shard: int,
        spec: EngineSpec,
        config: RunnerConfig,
        *,
        generation: int = 0,
        allow_process_faults: bool = False,
    ) -> None:
        self.shard = shard
        self.generation = generation
        self.config = config
        self.telemetry = TelemetryRegistry() if config.telemetry else None
        # Shard + generation stamp every span, so salvaged traces from a
        # crashed generation stay attributable after the merge.
        self.tracer: FlowTracer | None = (
            FlowTracer(
                capacity=config.trace_capacity,
                sample=config.trace_sample,
                shard=shard,
                generation=generation,
            )
            if config.trace
            else None
        )
        self._trace_enabled = self.tracer is not None
        self.engine = spec.build(telemetry=self.telemetry, tracer=self.tracer)
        self.alerts: list[Alert] = []
        self.quarantine = Quarantine()
        self.injector: FaultInjector | None = None
        if config.faults is not None:
            self.injector = FaultInjector(
                config.faults, shard, allow_process_faults=allow_process_faults
            )
        self.peak_state_bytes = 0
        self.peak_flows = 0
        self.evictions = 0
        self.batches = 0
        self.busy_ns = 0
        self.packets_seen = 0
        """Every packet fed to this shard, quarantined ones included --
        the index fault-injection points trigger on."""

        self.last_ts: float | None = None
        """Packet time of the last packet disposed of (examined or
        quarantined); the supervisor's degraded-interval start mark."""

        self.alerts_flushed = 0
        """How many leading entries of :attr:`alerts` have already been
        shipped in a :class:`ShardDelta` chunk."""

        self._flush_seq = 0
        self._evict_anchor: float | None = None

    def feed(self, batch: "list[TimedPacket] | PacketBatch") -> None:
        """Process one routed batch (engine work + periodic housekeeping).

        Accepts an object batch (``list[TimedPacket]``) or a columnar
        :class:`~repro.packet.batch.PacketBatch`; both take the same
        housekeeping path (eviction cadence, state sampling, busy-time
        accounting), so the two ingest modes see identical batch
        boundaries.  A :class:`PacketError` raised at this boundary --
        by an injected decode fault or by the engine itself --
        quarantines the affected packets and returns normally: malformed
        input degrades coverage (visibly, via the ledger), never the
        pipeline.
        """
        if not batch:
            return
        columnar = isinstance(batch, PacketBatch)
        if columnar:
            count = len(batch)
            first_ts = batch.first_ts
            last_ts = batch.last_ts
            if self.injector is not None:
                # RunnerConfig rejects faults+columnar; guard direct use.
                raise RuntimeError(
                    "fault injection is incompatible with columnar ingest"
                )
        else:
            count = len(batch)
            first_ts = batch[0].timestamp
            last_ts = batch[-1].timestamp
        self.packets_seen += count
        self.last_ts = last_ts
        if self.injector is not None and not columnar:
            try:
                self.injector.before_batch(self.packets_seen - count, batch)
            except PacketError as exc:
                self.quarantine.add(exc, packets=count)
                if self._trace_enabled and self.tracer is not None:
                    self.tracer.record_system(
                        "runtime",
                        "quarantine",
                        ts=last_ts,
                        cause=type(exc).__name__,
                        packets=count,
                    )
                return
        # CPU time, not wall time: on a host with fewer cores than
        # workers the wall clock counts time spent scheduled out, which
        # would make per-shard rates look like contention instead of
        # capacity.
        t0 = process_time_ns()
        examined_before = self.engine.stats.packets_total
        try:
            if columnar:
                self.alerts.extend(self.engine.process_column_batch(batch))
            else:
                self.alerts.extend(self.engine.process_batch(batch))
        except PacketError as exc:
            # The engine raised mid-batch.  The packets it already
            # counted stay counted (their alerts are lost with the
            # exception -- part of the quarantine's cost); the rest of
            # the batch is not replayed, because re-feeding the prefix
            # would double-process flow state.
            examined = self.engine.stats.packets_total - examined_before
            self.quarantine.add(exc, packets=count - examined)
            if self._trace_enabled and self.tracer is not None:
                self.tracer.record_system(
                    "runtime",
                    "quarantine",
                    ts=last_ts,
                    cause=type(exc).__name__,
                    packets=count - examined,
                )
        self.batches += 1
        interval = self.config.evict_interval
        if interval is not None:
            # Packet time, not wall time: replayed traces must evict at
            # the same points no matter how fast the box replays them.
            # Injected clock skew lands here -- on the housekeeping
            # clock only, never on alert timestamps -- so a skewed run
            # stays alert-equivalent while its eviction behaviour is
            # stressed.
            skew = self.injector.clock_skew if self.injector is not None else 0.0
            now = last_ts + skew
            if self._evict_anchor is None:
                self._evict_anchor = first_ts + skew
            if now - self._evict_anchor >= interval:
                self.evictions += self.engine.evict_idle(now)
                self._evict_anchor = now
        if self.config.sample_state:
            engine = self.engine
            self.peak_state_bytes = max(self.peak_state_bytes, engine.state_bytes())
            flows = engine.fast_path.tracked_flows + engine.slow_path.active_flows
            self.peak_flows = max(self.peak_flows, flows)
            if self.telemetry is not None:
                engine.refresh_telemetry()
        self.busy_ns += process_time_ns() - t0

    def control(self, message: ControlMessage) -> None:
        """Apply one out-of-band command between batches.

        Called by the worker loops (and directly by in-process drivers
        like the service pipeline) strictly *between* :meth:`feed`
        calls, which is what makes a ``reload`` atomic per shard: no
        batch ever sees two rule generations.  Unknown ops are counted
        and skipped -- a newer driver must not crash an older worker.
        """
        if message.op == "reload":
            payload = message.payload or {}
            self.engine.swap_rules(
                payload["rules"],
                split_policy=payload.get("split_policy"),
                model=payload.get("model"),
                timestamp=self.last_ts or 0.0,
            )
        elif self.telemetry is not None:
            self.telemetry.counter(
                "repro_runtime_unknown_control_total",
                "Control messages with an op this worker does not understand",
                ("op",),
            ).labels(op=message.op).inc()
            return
        else:
            return
        if self.telemetry is not None:
            self.telemetry.journal.record(
                "runtime",
                "control",
                op=message.op,
                seq=message.seq,
                shard=self.shard,
                **message.fields,
            )

    def tracked_flows(self) -> int:
        """Live flow records across both paths (what a restart resets)."""
        engine = self.engine
        return engine.fast_path.tracked_flows + engine.slow_path.active_flows

    def _report(self, alerts: list[Alert]) -> ShardReport:
        engine = self.engine
        return ShardReport(
            shard=self.shard,
            generation=self.generation,
            alerts=alerts,
            # A copy, not the live object: deltas cross the process
            # boundary while the engine keeps mutating its stats.
            stats=replace(engine.stats),
            divert_reasons={
                reason.value: count for reason, count in engine.divert_reasons.items()
            },
            diverted_flows=len(engine.diversions),
            reinstated_flows=engine.reinstated_flows,
            overload_refusals=engine.overload_refusals,
            peak_state_bytes=self.peak_state_bytes,
            peak_flows=self.peak_flows,
            evictions=self.evictions,
            batches=self.batches,
            busy_ns=self.busy_ns,
            quarantined=dict(self.quarantine.counts),
            # The span ring is bounded, so shipping a snapshot with every
            # delta stays cheap -- and it is exactly what lets a crashed
            # generation's traces be salvaged from its last flush.
            trace=self.tracer.snapshot() if self.tracer is not None else None,
        )

    def flush_delta(self) -> ShardDelta:
        """Snapshot cumulative counters + the unshipped alert chunk."""
        self._flush_seq += 1
        chunk = self.alerts[self.alerts_flushed :]
        self.alerts_flushed = len(self.alerts)
        return ShardDelta(
            seq=self._flush_seq,
            report=self._report(list(chunk)),
            last_ts=self.last_ts,
            tracked_flows=self.tracked_flows(),
        )

    def finish(self) -> ShardReport:
        """Final state sample + report assembly (call exactly once)."""
        engine = self.engine
        self.peak_state_bytes = max(self.peak_state_bytes, engine.state_bytes())
        if self.telemetry is not None:
            engine.refresh_telemetry()
        report = self._report(self.alerts)
        report.telemetry = self.telemetry
        # Like telemetry, the anomaly sketch ships only with the final
        # report -- a per-flush copy would dominate delta traffic.  The
        # merge layer folds shard sketches bucket-wise.
        report.sketch = engine.fast_path.sketch_snapshot()
        return report


def _supervised_loop(
    processor: ShardProcessor,
    config: RunnerConfig,
    in_queue: Any,
    out_queue: Any,
) -> None:
    """Consume batches with heartbeats and periodic delta flushes."""
    shard = processor.shard
    generation = processor.generation
    interval = config.heartbeat_interval
    last_flush = monotonic()
    while True:
        try:
            batch = in_queue.get(timeout=interval)
        except queue_mod.Empty:
            # Idle but alive.  A worker busy inside feed() proves
            # liveness through its delta flushes instead; one stalled
            # longer than the heartbeat timeout is indistinguishable
            # from hung, and restarting it is the correct response.
            out_queue.put(("hb", shard, generation, None))
            continue
        if batch is DRAIN:
            break
        if isinstance(batch, ControlMessage):
            processor.control(batch)
            continue
        processor.feed(batch)
        now = monotonic()
        if now - last_flush >= interval:
            out_queue.put(("delta", shard, generation, processor.flush_delta()))
            last_flush = now
    report = processor.finish()
    # The parent already holds every flushed chunk; ship only the tail.
    report.alerts = processor.alerts[processor.alerts_flushed :]
    out_queue.put(("ok", shard, generation, report))


def _legacy_loop(
    processor: ShardProcessor | None,
    failure: str | None,
    shard: int,
    in_queue: Any,
    out_queue: Any,
) -> None:
    """Historical fail-fast contract: report errors only at drain time."""
    while True:
        batch = in_queue.get()
        if batch is DRAIN:
            break
        if failure is None:
            assert processor is not None  # no failure implies construction worked
            try:
                if isinstance(batch, ControlMessage):
                    processor.control(batch)
                else:
                    processor.feed(batch)
            except Exception:
                failure = traceback.format_exc()
    if failure is not None:
        out_queue.put(("error", shard, 0, failure))
    else:
        assert processor is not None
        out_queue.put(("ok", shard, 0, processor.finish()))


def shard_worker_main(
    shard: int,
    generation: int,
    spec: EngineSpec,
    config: RunnerConfig,
    in_queue: Any,
    out_queue: Any,
) -> None:
    """Process entry point: drain batches until the sentinel, then report.

    Supervised workers (``config.supervised``) heartbeat, flush deltas,
    and report engine errors immediately; legacy workers keep the
    original consume-to-sentinel, report-once contract.  Either way the
    worker's last act before any exit is a status message on
    ``out_queue`` (SD106) -- the supervisor treats silence as death.
    """
    try:
        processor: ShardProcessor | None = ShardProcessor(
            shard, spec, config, generation=generation, allow_process_faults=True
        )
        failure: str | None = None
    except Exception:
        processor = None
        failure = traceback.format_exc()
    if not config.supervised:
        _legacy_loop(processor, failure, shard, in_queue, out_queue)
        return
    if failure is not None or processor is None:
        out_queue.put(("error", shard, generation, failure or "engine build failed"))
        return
    try:
        _supervised_loop(processor, config, in_queue, out_queue)
    except Exception:
        out_queue.put(("error", shard, generation, traceback.format_exc()))
        return
