"""Command-line interface: ``splitdetect`` (or ``python -m repro``).

Subcommands:

- ``run``       drive an IPS over a pcap file, print alerts and resources
- ``generate``  synthesize a benign trace (optionally with attacks) to pcap
- ``rules``     show the bundled signature corpus and its split statistics
- ``strategies`` list the evasion catalog
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from pathlib import Path

from .core import (
    Alert,
    ConventionalIPS,
    FastPathConfig,
    NaivePacketIPS,
    SplitDetectIPS,
)
from .evasion import STRATEGIES, build_attack
from .metrics import (
    RunReport,
    run_conventional,
    run_split_detect,
    run_split_detect_columnar,
    state_bytes_ratio,
)
from .pcap import read_column_batches, read_records, read_trace, write_trace
from .runtime import (
    Backpressure,
    EngineSpec,
    FaultPlan,
    ParallelRunner,
    RunnerConfig,
    ShardPolicy,
    iter_batches,
)
from .signatures import (
    RuleSet,
    SplitPolicy,
    load_bundled_rules,
    load_rules,
    split_ruleset,
)
from .telemetry import (
    NULL_REGISTRY,
    FlowTracer,
    TelemetryRegistry,
    TelemetrySession,
    span_sort_key,
    write_telemetry,
)
from .traffic import TrafficProfile, generate_trace, inject_attacks


def _load_ruleset(path: str | None) -> RuleSet:
    return load_rules(path) if path else load_bundled_rules()


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _writable_file(text: str) -> Path:
    """A file path whose parent directory already exists (--telemetry-out)."""
    path = Path(text)
    parent = path.parent
    if not parent.is_dir():
        raise argparse.ArgumentTypeError(
            f"parent directory {parent} does not exist"
        )
    return path


def _finish_telemetry(
    args: argparse.Namespace,
    ips: SplitDetectIPS | ConventionalIPS | NaivePacketIPS,
    report: RunReport | None = None,
) -> None:
    """Write the run's telemetry snapshot if --telemetry-out was given."""
    if not ips.telemetry.enabled:
        return
    ips.refresh_telemetry()
    if report is not None and args.engine == "split":
        ips.telemetry.gauge(
            "repro_run_state_bytes_ratio",
            "Measured peak state over the conventional provisioned equivalent",
        ).set(state_bytes_ratio(report))
    if args.telemetry_out is not None:
        path = write_telemetry(
            ips.telemetry, args.telemetry_out, format=args.telemetry_format
        )
        print(f"telemetry ({args.telemetry_format}) written to {path}")


def _write_trace_dump(path: Path, snapshot: dict | None) -> None:
    """Dump a flight-recorder snapshot as JSONL (one span per line)."""
    spans = (snapshot or {}).get("spans", [])
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span, sort_keys=True) + "\n")
    dropped = (snapshot or {}).get("dropped", 0)
    note = f" ({dropped} older spans dropped by the ring)" if dropped else ""
    print(f"trace: {len(spans)} spans written to {path}{note}")


def _print_alerts(alerts: list[Alert], max_alerts: int) -> None:
    print(f"alerts: {len(alerts)}")
    for alert in alerts[:max_alerts]:
        print(f"  {alert}")
    if len(alerts) > max_alerts:
        print(f"  ... and {len(alerts) - max_alerts} more")


def _fast_config(args: argparse.Namespace) -> FastPathConfig | None:
    """Fast-path config from CLI flags; None keeps the engine defaults."""
    if args.state_backend == "dict":
        return None
    return FastPathConfig(state_backend=args.state_backend)


def _cmd_run_parallel(args: argparse.Namespace, rules: RuleSet) -> int:
    """The sharded path: N worker processes behind the flow hash."""
    spec = EngineSpec(
        rules=rules,
        split_policy=SplitPolicy(piece_length=args.piece_length),
        fast_config=_fast_config(args),
    )
    faults = None
    if args.inject:
        try:
            faults = FaultPlan.parse(args.inject)
        except ValueError as exc:
            print(f"bad --inject spec: {exc}", file=sys.stderr)
            return 2
        print(f"fault plan: {faults.describe()}")
    trace_on = args.trace_out is not None or args.serve_telemetry is not None
    config = RunnerConfig(
        batch_size=args.batch_size,
        shard_policy=ShardPolicy(args.shard_policy),
        backpressure=Backpressure.SHED if args.shed else Backpressure.BLOCK,
        queue_depth=args.queue_depth,
        evict_interval=args.evict_interval,
        telemetry=not args.no_telemetry,
        trace=trace_on,
        trace_sample=args.trace_sample,
        max_restarts=args.max_restarts,
        restart_backoff=args.restart_backoff,
        faults=faults,
        ingest=args.ingest,
    )
    with TelemetrySession(args.serve_telemetry, hold=args.serve_hold) as session:
        runner = ParallelRunner(spec, workers=args.workers, config=config)
        session.update_health(status="running", mode="parallel",
                              workers=args.workers)
        # Undecoded records, not parsed packets: the runner's quarantine
        # owns malformed frames, so a hostile capture cannot kill the run.
        if args.ingest == "columnar":
            report = runner.run_columnar(
                read_column_batches(args.pcap, batch_size=config.batch_size)
            )
        else:
            report = runner.run(read_records(args.pcap))
        session.publish_registry(report.registry)
        session.publish_trace(report.trace)
        session.update_health(
            status="ok",
            mode="parallel",
            workers=report.workers,
            packets=report.packets,
            alerts=len(report.alerts),
            diverted_flows=report.diverted_flows,
            worker_restarts=report.worker_restarts,
        )
        _print_parallel_report(args, report)
    return 0


def _print_parallel_report(args: argparse.Namespace, report) -> None:
    if report.interrupted:
        print("INTERRUPTED: feed stopped early; workers drained, "
              "this is a partial report")
    print(
        f"processed {report.packets} packets across {report.workers} shards "
        f"in {report.wall_seconds:.2f}s "
        f"({report.wall_throughput_pps:,.0f} pkt/s wall, "
        f"{report.aggregate_shard_pps:,.0f} pkt/s aggregate)"
    )
    if report.shed_packets:
        print(f"SHED {report.shed_packets} packets "
              f"({report.shed_batches} batches) under backpressure")
    if report.worker_restarts:
        print(f"RESTARTED {report.worker_restarts} worker(s)")
    for interval in report.degraded:
        if interval.start_ts is not None and interval.end_ts is not None:
            window = f"{interval.start_ts:.3f}..{interval.end_ts:.3f}"
        elif interval.open:
            window = "open"
        else:
            window = "unconfirmed start"
        print(
            f"DEGRADED shard {interval.shard} gen {interval.generation} "
            f"[{interval.reason}] packets_lost={interval.packets_lost} "
            f"flows_reset={interval.flows_reset} "
            f"alerts_salvaged={interval.alerts_salvaged} window={window}"
        )
    if report.quarantined:
        causes = ", ".join(
            f"{cause}={count}" for cause, count in sorted(report.quarantined.items())
        )
        print(f"QUARANTINED {report.quarantined_packets} malformed frame(s): {causes}")
    print(f"diverted flows: {report.diverted_flows}  "
          f"({report.diversion_byte_fraction:.2%} of bytes on slow path)")
    for reason, count in sorted(report.divert_reasons.items()):
        print(f"  divert[{reason}] = {count}")
    for shard in report.shards:
        print(f"  shard[{shard.shard}]: {shard.stats.packets_total} packets, "
              f"{len(shard.alerts)} alerts, {shard.diverted_flows} diverted, "
              f"{shard.busy_seconds:.2f}s busy")
    print(f"peak state: {report.peak_state_bytes} bytes over "
          f"{report.peak_flows} flows (summed shard provisioning)")
    _print_alerts(report.alerts, args.max_alerts)
    if report.registry is not None and args.telemetry_out is not None:
        path = write_telemetry(
            report.registry, args.telemetry_out, format=args.telemetry_format
        )
        print(f"telemetry ({args.telemetry_format}) written to {path}")
    if report.profile is not None:
        _print_profile(report.profile)
    if args.trace_out is not None:
        _write_trace_dump(args.trace_out, report.trace)


def _print_profile(profile: dict) -> None:
    """One line per stage: count, p50/p99, and the max-bucket bound."""
    print("stage profile (ns):")
    for stage in sorted(profile.get("stages", {})):
        entry = profile["stages"][stage]
        print(
            f"  {stage:<10} count={entry['count']:<8} "
            f"p50={entry['p50_ns']:,.0f} p99={entry['p99_ns']:,.0f} "
            f"max<={entry['max_le_ns']:,.0f}"
        )


def cmd_run(args: argparse.Namespace) -> int:
    if args.no_telemetry and args.telemetry_out is not None:
        print("--telemetry-out needs instrumentation; drop --no-telemetry",
              file=sys.stderr)
        return 2
    if args.no_telemetry and args.serve_telemetry is not None:
        print("--serve-telemetry needs instrumentation; drop --no-telemetry",
              file=sys.stderr)
        return 2
    if (
        args.trace_out is not None or args.serve_telemetry is not None
    ) and args.engine != "split":
        print("--trace-out/--serve-telemetry trace the split engine's "
              "decision procedure; conventional/naive baselines have none",
              file=sys.stderr)
        return 2
    if args.workers and args.engine != "split":
        print("--workers shards the split engine only; conventional/naive "
              "baselines run single-process", file=sys.stderr)
        return 2
    if args.state_backend != "dict" and args.engine != "split":
        print("--state-backend configures the split engine's fast path; "
              "conventional/naive baselines have no flow monitor",
              file=sys.stderr)
        return 2
    if (args.inject or args.max_restarts) and not args.workers:
        print("--inject/--max-restarts drive the sharded runtime; add "
              "--workers N", file=sys.stderr)
        return 2
    if args.ingest == "columnar" and args.engine != "split":
        print("--ingest columnar feeds the split engine's columnar fast "
              "path; conventional/naive baselines consume packet objects",
              file=sys.stderr)
        return 2
    if args.ingest == "columnar" and args.inject:
        print("--inject is incompatible with --ingest columnar (the fault "
              "injection points are defined over object batches)",
              file=sys.stderr)
        return 2
    if args.max_restarts < 0:
        print(f"--max-restarts must be >= 0, got {args.max_restarts}",
              file=sys.stderr)
        return 2
    rules = _load_ruleset(args.rules)
    print(f"loaded {len(rules)} signatures")
    if args.workers:
        return _cmd_run_parallel(args, rules)
    # Single-process path.  The trace is streamed lazily off the pcap in
    # batches, so footprint stays bounded regardless of capture size.
    trace = read_trace(args.pcap)
    telemetry = NULL_REGISTRY if args.no_telemetry else TelemetryRegistry()
    if args.engine == "split":
        tracer = None
        if args.trace_out is not None or args.serve_telemetry is not None:
            tracer = FlowTracer(sample=args.trace_sample)
        ips = SplitDetectIPS(
            rules,
            split_policy=SplitPolicy(piece_length=args.piece_length),
            fast_config=_fast_config(args),
            telemetry=telemetry,
            tracer=tracer,
        )
        with TelemetrySession(args.serve_telemetry, hold=args.serve_hold) as session:
            # Live wiring: a mid-run scrape refreshes the gauges and
            # reads the engine's registry directly.
            session.publish_registry(telemetry, refresh=ips.refresh_telemetry)
            session.update_health(status="running", mode="single")
            if args.ingest == "columnar":
                # Same contract as read_trace: malformed frames raise.
                report = run_split_detect_columnar(
                    ips,
                    read_column_batches(
                        args.pcap,
                        batch_size=args.batch_size,
                        on_invalid="raise",
                    ),
                    evict_interval=args.evict_interval,
                )
            else:
                report = run_split_detect(
                    ips,
                    trace,
                    batch_size=args.batch_size,
                    evict_interval=args.evict_interval,
                )
            print(f"processed {report.packets} packets")
            print(f"diverted flows: {report.diverted_flows}  "
                  f"({report.diversion_byte_fraction:.2%} of bytes on slow path)")
            for reason, count in sorted(report.divert_reasons.items()):
                print(f"  divert[{reason}] = {count}")
            if report.profile is not None:
                _print_profile(report.profile)
            if args.trace_out is not None:
                _write_trace_dump(args.trace_out, report.trace)
            session.publish_trace(report.trace)
            session.update_health(
                status="ok",
                mode="single",
                packets=report.packets,
                alerts=len(report.alerts),
                diverted_flows=report.diverted_flows,
            )
            print(f"peak state: {report.peak_state_bytes} bytes over "
                  f"{report.peak_flows} flows")
            _print_alerts(report.alerts, args.max_alerts)
            _finish_telemetry(args, ips, report)
        return 0
    elif args.engine == "conventional":
        ips = ConventionalIPS(rules, telemetry=telemetry)
        report = run_conventional(ips, trace)
        print(f"processed {report.packets} packets")
    else:
        ips = NaivePacketIPS(rules, telemetry=telemetry)
        alerts = []
        packets = 0
        for batch in iter_batches(trace, args.batch_size):
            alerts.extend(ips.process_batch(batch))
            packets += len(batch)
        print(f"processed {packets} packets")
        _print_alerts(alerts, args.max_alerts)
        _finish_telemetry(args, ips)
        return 0
    print(f"peak state: {report.peak_state_bytes} bytes over {report.peak_flows} flows")
    _print_alerts(report.alerts, args.max_alerts)
    _finish_telemetry(args, ips, report)
    return 0


def _parse_tenant(text: str):
    """Parse one --tenant NAME=SELECTORS:RULES declaration."""
    from .service import TenantSpec

    name, sep, rest = text.partition("=")
    selectors_text, sep2, rules_path = rest.rpartition(":")
    if not sep or not sep2 or not name or not selectors_text or not rules_path:
        raise ValueError(
            f"bad --tenant {text!r}: expected NAME=SELECTOR[,SELECTOR...]:RULES_PATH"
        )
    selectors = tuple(s for s in selectors_text.split(",") if s)
    if not selectors:
        raise ValueError(f"bad --tenant {text!r}: no selectors")
    return TenantSpec(
        name=name,
        selectors=selectors,
        rules=load_rules(rules_path),
        rules_path=rules_path,
    )


def cmd_serve(args: argparse.Namespace) -> int:
    """Long-lived service mode: ingest, shed, hot-reload, drain."""
    from .runtime.spec import EngineSpec as _EngineSpec
    from .service import (
        ServiceConfig,
        ShedPolicy,
        SplitDetectService,
        TenantTable,
        open_source,
    )

    if args.no_telemetry and (
        args.telemetry_out is not None or args.serve_telemetry is not None
    ):
        print("--telemetry-out/--serve-telemetry need instrumentation; "
              "drop --no-telemetry", file=sys.stderr)
        return 2
    rules = _load_ruleset(args.rules)
    print(f"loaded {len(rules)} signatures (default tenant)")
    try:
        tenants = [_parse_tenant(text) for text in args.tenant or []]
    except (ValueError, OSError) as exc:
        print(f"bad tenant declaration: {exc}", file=sys.stderr)
        return 2
    for spec in tenants:
        print(f"tenant {spec.name}: {len(spec.rules)} signatures, "
              f"selectors {', '.join(spec.selectors)}")
    try:
        source = open_source(args.source, capacity=args.ingest_buffer)
    except (ValueError, OSError) as exc:
        print(f"cannot open source: {exc}", file=sys.stderr)
        return 2
    trace_on = args.trace_out is not None or args.serve_telemetry is not None
    runner_config = RunnerConfig(
        batch_size=args.batch_size,
        evict_interval=args.evict_interval,
        telemetry=not args.no_telemetry,
        trace=trace_on,
        trace_sample=args.trace_sample,
    )
    engine_spec = _EngineSpec(
        rules=rules,
        split_policy=SplitPolicy(piece_length=args.piece_length),
        fast_config=_fast_config(args),
    )
    try:
        table = TenantTable(
            engine_spec, tenants, keyer=args.tenant_key, config=runner_config
        )
        policy = ShedPolicy(
            backlog_high=args.shed_high,
            backlog_low=args.shed_low,
            p99_budget_ns=args.shed_p99_budget_us * 1000.0,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    service_config = ServiceConfig(
        batch_size=args.batch_size,
        poll_timeout=args.poll_timeout,
        duration=args.duration,
        max_packets=args.max_packets,
        shed_policy=policy,
        shed_enabled=not args.no_shed,
    )
    tenant_paths = {spec.name: spec.rules_path for spec in tenants}

    def reload_loader():
        updated = {"default": _load_ruleset(args.rules)}
        for name, path in tenant_paths.items():
            updated[name] = load_rules(path)
        return updated

    service = SplitDetectService(
        source, table, config=service_config, reload_loader=reload_loader
    )

    # Signal contract: SIGHUP reloads, SIGTERM/SIGINT drain cleanly.
    # Handlers only flip events; the loop does the work on its own
    # thread, so no engine is ever touched from a handler.
    previous = {}
    for signum, handler in (
        (signal.SIGTERM, lambda *_: service.request_stop("sigterm")),
        (signal.SIGINT, lambda *_: service.request_stop("sigint")),
        (getattr(signal, "SIGHUP", None), lambda *_: service.request_reload()),
    ):
        if signum is not None:
            previous[signum] = signal.signal(signum, handler)
    try:
        with TelemetrySession(args.serve_telemetry, hold=args.serve_hold) as session:
            if session.enabled:
                publisher = session.publisher
                publisher.source_state = source.state
                publisher.shed_state = service.shedder.state
                publisher.tenants_state = table.state
                publisher.reload_token = args.reload_token
                if args.reload_token:
                    publisher.on_reload = service.request_reload
                    print("reload endpoint: POST /reload "
                          "(Authorization: Bearer <token>)")
                from .service import DEFAULT_TENANT

                session.publish_registry(
                    table.processor(DEFAULT_TENANT).telemetry
                )
            session.update_health(
                status="running", mode="serve", source=args.source,
                tenants=len(tenants) + 1,
            )
            print(f"serving from {args.source} "
                  f"(tenant key: {args.tenant_key}, "
                  f"shed: {'off' if args.no_shed else 'on'})")
            report = service.run()
            session.publish_registry(report.runtime.registry)
            session.publish_trace(report.runtime.trace)
            session.update_health(
                status="ok",
                mode="serve",
                stop_reason=report.stop_reason,
                packets=report.examined_packets,
                alerts=len(report.runtime.alerts),
            )
            _print_serve_report(args, report)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return 0


def _print_serve_report(args: argparse.Namespace, report) -> None:
    runtime = report.runtime
    print(f"stopped ({report.stop_reason}) after {report.wall_seconds:.2f}s")
    print(
        f"accounting: input={report.input_records} "
        f"examined={report.examined_packets} shed={report.shed_packets} "
        f"quarantined={report.quarantined_packets} lost={report.lost_packets} "
        f"[{'closed' if report.accounting_closed else 'OPEN -- BUG'}]"
    )
    if report.reloads:
        print(f"hot reloads applied: {report.reloads}")
    if report.shed_packets:
        print(f"SHED {report.shed_packets} packets under overload "
              f"({report.shed.get('level_changes', 0)} level changes, "
              f"{report.shed.get('protected_packets', 0)} protected packets "
              f"kept)")
    for name, entry in sorted(report.tenants.get("tenants", {}).items()):
        print(f"  tenant[{name}]: {entry['packets']} packets, "
              f"{entry['alerts']} alerts, {entry['diverted_flows']} diverted, "
              f"rules gen {entry['rules_generation']}")
    print(f"diverted flows: {runtime.diverted_flows}  "
          f"({runtime.diversion_byte_fraction:.2%} of bytes on slow path)")
    _print_alerts(runtime.alerts, args.max_alerts)
    if runtime.registry is not None and args.telemetry_out is not None:
        path = write_telemetry(
            runtime.registry, args.telemetry_out, format=args.telemetry_format
        )
        print(f"telemetry ({args.telemetry_format}) written to {path}")
    if args.trace_out is not None:
        _write_trace_dump(args.trace_out, runtime.trace)


def _load_spans(path: str) -> list[dict]:
    spans = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not a JSON span: {exc}") from exc
    return spans


def _matches_selector(span: dict, selector: str) -> bool:
    """A span matches a 16-hex trace id (prefix ok) or a flow substring."""
    lowered = selector.lower()
    if all(ch in "0123456789abcdef" for ch in lowered) and lowered:
        if span.get("trace", "").startswith(lowered):
            return True
    return selector in span.get("flow", "")


def _format_span(span: dict) -> str:
    base_keys = ("trace", "ts", "shard", "gen", "seq", "stage", "event", "flow")
    extras = " ".join(
        f"{key}={span[key]}" for key in span if key not in base_keys
    )
    return (
        f"  t={span.get('ts', 0.0):>12.6f}  shard {span.get('shard', 0)}"
        f"/g{span.get('gen', 0)}  [{span.get('stage', '?'):<7}] "
        f"{span.get('event', '?'):<14}{(' ' + extras) if extras else ''}"
    )


def cmd_explain(args: argparse.Namespace) -> int:
    """Reconstruct a flow's decision timeline from a JSONL trace dump."""
    try:
        spans = _load_spans(args.trace_file)
    except OSError as exc:
        print(f"cannot read {args.trace_file}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not args.selector:
        # No selector: list the traced flows so the operator can pick one.
        flows: dict[str, tuple[str, int]] = {}
        for span in spans:
            trace_id = span.get("trace", "?")
            flow, count = flows.get(trace_id, ("", 0))
            flows[trace_id] = (flow or span.get("flow", ""), count + 1)
        print(f"{len(spans)} spans across {len(flows)} traces in {args.trace_file}")
        for trace_id in sorted(flows):
            flow, count = flows[trace_id]
            print(f"  {trace_id}  spans={count:<5} {flow}")
        return 0
    matched = [span for span in spans if _matches_selector(span, args.selector)]
    if not matched:
        print(f"no spans match {args.selector!r} in {args.trace_file}",
              file=sys.stderr)
        return 1
    matched.sort(key=span_sort_key)
    trace_ids = sorted({span.get("trace", "?") for span in matched})
    print(
        f"{len(matched)} spans for trace "
        f"{', '.join(trace_ids)} ({args.selector!r}):"
    )
    for span in matched:
        print(_format_span(span))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    profile = TrafficProfile(flows=args.flows)
    trace = generate_trace(profile, seed=args.seed)
    attacks = []
    rules = _load_ruleset(args.rules)
    for name in args.attack or []:
        if name not in STRATEGIES:
            print(f"unknown strategy {name!r}; see 'splitdetect strategies'", file=sys.stderr)
            return 2
        signature = rules.signatures[0]
        payload = b"X" * 200 + signature.pattern + b"Y" * 200
        attacks.append(
            build_attack(
                name,
                payload,
                signature_span=(200, len(signature.pattern)),
                src=f"10.250.0.{len(attacks) + 1}",
                dst_port=signature.dst_port or 80,
            )
        )
    merged = inject_attacks(trace, attacks) if attacks else trace
    count = write_trace(args.out, merged)
    print(f"wrote {count} packets to {args.out}"
          + (f" ({len(attacks)} attack flows)" if attacks else ""))
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    rules = _load_ruleset(args.rules)
    policy = SplitPolicy(piece_length=args.piece_length)
    split = split_ruleset(rules, policy)
    print(f"signatures: {len(rules)}")
    print(f"splittable: {len(split.splits)}   unsplittable: {len(split.unsplittable)}")
    print(f"pieces: {split.piece_count}   small-packet threshold B: "
          f"{split.small_packet_threshold} bytes")
    if args.histogram:
        print("pattern-length histogram:")
        for length, count in rules.length_histogram().items():
            print(f"  {length:>4} bytes: {'#' * count} ({count})")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    import random

    from .signatures import ByteFrequencyModel, lint_ruleset
    from .signatures.lint import LintLevel
    from .traffic import benign_payload

    rules = _load_ruleset(args.rules)
    model = None
    if not args.no_model:
        model = ByteFrequencyModel()
        rng = random.Random(99)
        for _ in range(30):
            model.train(benign_payload(rng, 4000))
    findings = lint_ruleset(
        rules, SplitPolicy(piece_length=args.piece_length), model
    )
    errors = sum(1 for f in findings if f.level is LintLevel.ERROR)
    warnings = sum(1 for f in findings if f.level is LintLevel.WARNING)
    if args.json:
        json.dump(
            {
                "rules": len(rules),
                "errors": errors,
                "warnings": warnings,
                "findings": [
                    {
                        "level": f.level.value,
                        "sid": f.sid,
                        "code": f.code,
                        "message": f.message,
                    }
                    for f in findings
                ],
            },
            sys.stdout,
            indent=2,
        )
        sys.stdout.write("\n")
    else:
        for finding in findings:
            print(finding)
        print(f"{len(rules)} rules: {len(findings)} findings, {errors} errors")
    if errors:
        return 1
    if args.strict and warnings:
        return 1
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .devtools.splitcheck.cli import run_check

    return run_check(args)


def cmd_stats(args: argparse.Namespace) -> int:
    from .analysis import characterize, format_stats

    trace = list(read_trace(args.pcap))
    for line in format_stats(characterize(trace)):
        print(line)
    return 0


def cmd_strategies(_args: argparse.Namespace) -> int:
    for name in sorted(STRATEGIES):
        strategy = STRATEGIES[name]
        print(f"{name:<18} {strategy.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="splitdetect",
        description="Split-Detect IPS (SIGCOMM 2006 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an IPS over a pcap file")
    run.add_argument("pcap")
    run.add_argument("--rules", help="Snort-content rules file (default: bundled corpus)")
    run.add_argument("--engine", choices=("split", "conventional", "naive"), default="split")
    run.add_argument(
        "--ingest",
        choices=("object", "columnar"),
        default="object",
        help="pcap ingest mode: 'object' parses every frame into packet "
             "objects (default); 'columnar' decodes whole batches into "
             "parallel columns and materializes objects only for flagged "
             "rows (split engine only; results are byte-identical)",
    )
    run.add_argument(
        "--state-backend",
        choices=("dict", "table", "sketch"),
        default="dict",
        help="fast-path flow state: 'dict' (unbounded exact map, default), "
             "'table' (fixed set-associative flow table), or 'sketch' "
             "(cold slots + count-min anomaly sketch + exact hot set -- "
             "constant memory at any flow count)",
    )
    run.add_argument("--piece-length", type=int, default=8)
    run.add_argument("--max-alerts", type=int, default=20)
    run.add_argument(
        "--batch-size",
        type=_positive_int,
        default=256,
        help="packets per process_batch call (amortizes the fast-path scan)",
    )
    run.add_argument(
        "--telemetry-out",
        type=_writable_file,
        metavar="PATH",
        help="write the run's telemetry snapshot to this file",
    )
    run.add_argument(
        "--telemetry-format",
        choices=("json", "prometheus"),
        default="json",
        help="exposition format for --telemetry-out (default: json)",
    )
    run.add_argument(
        "--no-telemetry",
        action="store_true",
        help="run with the no-op registry (skips all instrumentation)",
    )
    run.add_argument(
        "--trace-out",
        type=_writable_file,
        metavar="PATH",
        help="write the flight-recorder span dump as JSONL (one span per "
             "line; feed it to 'splitdetect explain')",
    )
    run.add_argument(
        "--trace-sample",
        type=_positive_int,
        default=1,
        metavar="N",
        help="trace 1-in-N flows by trace id (default: 1 = every flow); "
             "diverted flows are always traced in full",
    )
    run.add_argument(
        "--serve-telemetry",
        type=int,
        default=None,
        metavar="PORT",
        help="expose /metrics, /healthz and /traces over HTTP on this "
             "port for the duration of the run (0 picks a free port)",
    )
    run.add_argument(
        "--serve-hold",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="keep the telemetry endpoint up this long after the run "
             "finishes (default: stop immediately)",
    )
    run.add_argument(
        "--workers",
        type=_positive_int,
        default=0,
        metavar="N",
        help="shard the split engine across N worker processes behind a "
             "flow-consistent hash (default: single-process)",
    )
    run.add_argument(
        "--shard-policy",
        choices=tuple(policy.value for policy in ShardPolicy),
        default=ShardPolicy.FLOW.value,
        help="shard key: 'flow' hashes the address pair (fragment-safe, "
             "default); 'tuple5' adds ports for finer balance",
    )
    pressure = run.add_mutually_exclusive_group()
    pressure.add_argument(
        "--block",
        action="store_true",
        help="block the feeder when a shard queue is full (lossless; default)",
    )
    pressure.add_argument(
        "--shed",
        action="store_true",
        help="drop batches when a shard queue is full, counting every "
             "shed packet",
    )
    run.add_argument(
        "--queue-depth",
        type=_positive_int,
        default=8,
        help="bounded per-worker queue depth, in batches (default: 8)",
    )
    run.add_argument(
        "--evict-interval",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="sweep idle flow state every SECONDS of packet time "
             "(default: no automatic eviction)",
    )
    run.add_argument(
        "--max-restarts",
        type=int,
        default=0,
        metavar="N",
        help="supervise workers: restart a dead/hung shard up to N times "
             "with a fresh engine, reporting the gap as a degraded "
             "interval (default 0: any worker failure aborts the run)",
    )
    run.add_argument(
        "--restart-backoff",
        type=_positive_float,
        default=0.05,
        metavar="SECONDS",
        help="base of the supervisor's exponential restart backoff "
             "(default: 0.05)",
    )
    run.add_argument(
        "--inject",
        action="append",
        metavar="FAULT",
        help="inject a deterministic fault, e.g. 'crash:shard=1,at=500' "
             "or 'stall:shard=0,at=100,seconds=0.2'; kinds: crash, hang, "
             "stall, slowdown, decode, skew (repeatable; needs --workers)",
    )
    run.set_defaults(func=cmd_run)

    serve = sub.add_parser(
        "serve",
        help="run as a long-lived service: socket/tail/replay ingestion, "
             "per-tenant rules, adaptive shedding, hot reload",
    )
    serve.add_argument(
        "source",
        help="ingest spec: replay:PATH (pcap, once), tail:PATH (follow a "
             "growing pcap), tcp:HOST:PORT or unix:PATH (framed-record "
             "socket protocol; see DESIGN.md 'Service mode')",
    )
    serve.add_argument("--rules", help="default tenant's rules file "
                       "(default: bundled corpus)")
    serve.add_argument(
        "--tenant",
        action="append",
        metavar="NAME=SELECTORS:RULES",
        help="add a tenant with its own signature set, e.g. "
             "'acme=10.1.0.0/16:acme.rules' (repeatable; selectors are "
             "comma-separated values of --tenant-key)",
    )
    serve.add_argument(
        "--tenant-key",
        choices=("dst-ip", "src-ip", "dst-port"),
        default="dst-ip",
        help="how packets map to tenants (default: dst-ip, fragment-safe)",
    )
    serve.add_argument(
        "--reload-token",
        metavar="TOKEN",
        help="enable authenticated POST /reload on the telemetry endpoint "
             "(SIGHUP always reloads; without a token the HTTP path stays "
             "disabled)",
    )
    serve.add_argument("--piece-length", type=int, default=8)
    serve.add_argument("--max-alerts", type=int, default=20)
    serve.add_argument(
        "--state-backend",
        choices=("dict", "table", "sketch"),
        default="dict",
        help="fast-path flow state backend (see 'run --help')",
    )
    serve.add_argument("--batch-size", type=_positive_int, default=256,
                       help="records per ingest poll and per engine batch")
    serve.add_argument(
        "--poll-timeout",
        type=_positive_float,
        default=0.25,
        metavar="SECONDS",
        help="how long one poll waits for traffic; also the latency bound "
             "on noticing stop/reload while idle (default: 0.25)",
    )
    serve.add_argument(
        "--ingest-buffer",
        type=_positive_int,
        default=4096,
        metavar="RECORDS",
        help="bounded socket ingest buffer; its fill fraction drives the "
             "load shedder (default: 4096)",
    )
    serve.add_argument(
        "--duration",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="stop after this much wall time (default: run until signaled)",
    )
    serve.add_argument(
        "--max-packets",
        type=_positive_int,
        default=None,
        metavar="N",
        help="stop after ingesting N records (default: unbounded)",
    )
    serve.add_argument("--no-shed", action="store_true",
                       help="disable adaptive load shedding entirely")
    serve.add_argument(
        "--shed-high",
        type=_positive_float,
        default=0.75,
        metavar="FRACTION",
        help="ingest-buffer fill fraction that raises the shed level "
             "(default: 0.75)",
    )
    serve.add_argument(
        "--shed-low",
        type=_positive_float,
        default=0.25,
        metavar="FRACTION",
        help="fill fraction below which the shed level may step down "
             "(default: 0.25)",
    )
    serve.add_argument(
        "--shed-p99-budget-us",
        type=float,
        default=0.0,
        metavar="MICROSECONDS",
        help="fast-path stage p99 latency budget; exceeding it raises the "
             "shed level (default: 0 = backlog signal only)",
    )
    serve.add_argument(
        "--evict-interval",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="sweep idle flow state every SECONDS of packet time",
    )
    serve.add_argument("--no-telemetry", action="store_true",
                       help="run with the no-op registry")
    serve.add_argument("--telemetry-out", type=_writable_file, metavar="PATH",
                       help="write the final telemetry snapshot here")
    serve.add_argument("--telemetry-format", choices=("json", "prometheus"),
                       default="json")
    serve.add_argument("--trace-out", type=_writable_file, metavar="PATH",
                       help="write the flight-recorder span dump as JSONL")
    serve.add_argument("--trace-sample", type=_positive_int, default=1,
                       metavar="N", help="trace 1-in-N flows")
    serve.add_argument(
        "--serve-telemetry",
        type=int,
        default=None,
        metavar="PORT",
        help="expose /metrics /healthz /traces /shed /tenants (and POST "
             "/reload with --reload-token) on this port (0 picks a free one)",
    )
    serve.add_argument("--serve-hold", type=_positive_float, default=None,
                       metavar="SECONDS",
                       help="keep the endpoint up after the drain")
    serve.set_defaults(func=cmd_serve)

    gen = sub.add_parser("generate", help="synthesize a trace to pcap")
    gen.add_argument("out")
    gen.add_argument("--flows", type=int, default=100)
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument("--rules", help="rules file supplying the attack signature")
    gen.add_argument(
        "--attack",
        action="append",
        metavar="STRATEGY",
        help="inject an attack flow using this evasion strategy (repeatable)",
    )
    gen.set_defaults(func=cmd_generate)

    rules = sub.add_parser("rules", help="signature corpus statistics")
    rules.add_argument("--rules")
    rules.add_argument("--piece-length", type=int, default=8)
    rules.add_argument("--histogram", action="store_true")
    rules.set_defaults(func=cmd_rules)

    lint = sub.add_parser("lint", help="check a rules file for Split-Detect fitness")
    lint.add_argument("--rules")
    lint.add_argument("--piece-length", type=int, default=8)
    lint.add_argument("--no-model", action="store_true",
                      help="skip the benign-traffic noisy-piece analysis")
    lint.add_argument("--strict", action="store_true",
                      help="exit non-zero on warnings too (CI mode)")
    lint.add_argument("--json", action="store_true",
                      help="emit findings as JSON for machine consumption")
    lint.set_defaults(func=cmd_lint)

    check = sub.add_parser(
        "check",
        help="run the splitcheck static invariant analyzer over the codebase",
    )
    from .devtools.splitcheck.cli import configure_parser as _configure_check

    _configure_check(check)
    check.set_defaults(func=cmd_check)

    explain = sub.add_parser(
        "explain",
        help="reconstruct a flow's decision timeline from a --trace-out dump",
    )
    explain.add_argument("trace_file", help="JSONL span dump written by --trace-out")
    explain.add_argument(
        "selector",
        nargs="?",
        help="trace id (16-hex, prefix ok) or flow substring; omit to "
             "list the traced flows",
    )
    explain.set_defaults(func=cmd_explain)

    stats = sub.add_parser("stats", help="characterize a pcap trace")
    stats.add_argument("pcap")
    stats.set_defaults(func=cmd_stats)

    strategies = sub.add_parser("strategies", help="list the evasion catalog")
    strategies.set_defaults(func=cmd_strategies)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
