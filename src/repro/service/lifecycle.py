"""The long-lived service loop: ingest, tenant routing, shed, reload, drain.

:class:`SplitDetectService` turns the batch pipeline into a daemon with
an explicit lifecycle contract:

- **ingest**: poll the source for undecoded records; malformed frames
  go to the decode quarantine (never raised), source-side overflow is
  the ``lost`` term;
- **route**: the tenant keyer assigns each packet to a tenant pipeline
  (shared-nothing :class:`~repro.runtime.worker.ShardProcessor`, see
  :mod:`repro.service.tenancy`);
- **shed**: under overload the :class:`~repro.service.shedding.LoadShedder`
  drops benign-profile flows before the ingest buffer overflows --
  never a diverted or force-traced flow;
- **reload**: ``request_reload()`` (SIGHUP / authenticated POST) marks
  a pending swap; the loop applies it *between polls* through the
  worker control protocol, so every tenant's swap lands at a batch
  boundary and no flow state, in-flight diverted work, or counter is
  dropped;
- **drain**: ``request_stop()`` (SIGTERM/SIGINT) finishes every
  pipeline through the normal drain path and returns a final
  :class:`ServiceReport` whose loss accounting closes:
  ``examined + shed + quarantined + lost == input``.

``request_stop`` and ``request_reload`` are thread-safe (signal
handlers and HTTP handler threads call them); the loop itself is
single-threaded, so engines are only ever touched from one thread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import monotonic, perf_counter
from typing import Any

from ..packet import TimedPacket, flow_key_of
from ..runtime import Quarantine, RuntimeReport, decode_packets, merge_shard_reports
from ..signatures import RuleSet
from ..telemetry import stage_profile
from .shedding import LoadShedder, ShedPolicy
from .tenancy import DEFAULT_TENANT, TenantTable

__all__ = ["ServiceConfig", "ServiceReport", "SplitDetectService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Loop knobs; engine/tenant knobs live in the :class:`TenantTable`."""

    batch_size: int = 256
    """Records per poll and per tenant feed call."""

    poll_timeout: float = 0.25
    """Seconds one poll waits for the first record; also the latency
    bound on noticing a stop/reload request while idle."""

    duration: float | None = None
    """Stop after this many wall seconds (None: run until stopped)."""

    max_packets: int | None = None
    """Stop after ingesting this many records (None: unbounded)."""

    shed_policy: ShedPolicy = field(default_factory=ShedPolicy)
    shed_enabled: bool = True
    profile_every: int = 8
    """Polls between shed-signal updates that consult the stage
    profiler (the backlog signal is sampled every poll; the histogram
    walk is the expensive part)."""


@dataclass
class ServiceReport:
    """The final word of one service run: merged results + accounting."""

    runtime: RuntimeReport
    stop_reason: str
    input_records: int
    examined_packets: int
    shed_packets: int
    quarantined_packets: int
    lost_packets: int
    reloads: int
    wall_seconds: float
    source: dict[str, Any] = field(default_factory=dict)
    shed: dict[str, Any] = field(default_factory=dict)
    tenants: dict[str, Any] = field(default_factory=dict)

    @property
    def accounting_closed(self) -> bool:
        """The lossless-or-counted identity the service promises."""
        return (
            self.examined_packets
            + self.shed_packets
            + self.quarantined_packets
            + self.lost_packets
            == self.input_records
        )


class SplitDetectService:
    """One running ``splitdetect serve`` instance."""

    def __init__(
        self,
        source: Any,
        table: TenantTable,
        *,
        config: ServiceConfig | None = None,
        reload_loader: Any = None,
    ) -> None:
        self.source = source
        self.table = table
        self.config = config or ServiceConfig()
        self.reload_loader = reload_loader
        """Zero-argument callable returning ``{tenant_name: RuleSet}``
        for the tenants whose rules should swap; wired by the CLI to
        re-read every tenant's rules file."""

        self.shedder = LoadShedder(self.config.shed_policy)
        self.shedder.enabled = self.config.shed_enabled
        self._stop = threading.Event()
        self._reload = threading.Event()
        self._stop_reason = "exhausted"
        self.input_records = 0
        self.reloads = 0
        self._reload_seq = 0
        self._quarantine = Quarantine()
        registry = table.processor(DEFAULT_TENANT).telemetry
        self._shed_counter = None
        self._shed_level_gauge = None
        self._reload_counter = None
        if registry is not None:
            self._shed_counter = registry.counter(
                "repro_service_shed_packets_total",
                "Packets the service shed under overload, by shed level",
                ("level",),
            )
            self._shed_level_gauge = registry.gauge(
                "repro_service_shed_level",
                "Current load-shedding level (0 = none)",
                merge="max",
            )
            self._reload_counter = registry.counter(
                "repro_service_reloads_total",
                "Hot signature-set reloads applied across all tenants",
            )

    # -- thread-safe control surface -----------------------------------

    def request_stop(self, reason: str = "signal") -> dict[str, Any]:
        """Begin a clean drain; callable from signal/HTTP threads."""
        if not self._stop.is_set():
            self._stop_reason = reason
            self._stop.set()
        return {"stopping": True, "reason": self._stop_reason}

    def request_reload(self) -> dict[str, Any]:
        """Mark a reload pending; the loop applies it between polls."""
        if self.reload_loader is None:
            raise RuntimeError("no reload loader configured")
        self._reload.set()
        return {"reload_requested": True, "reloads_applied": self.reloads}

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # -- the loop -------------------------------------------------------

    def _apply_reload(self) -> None:
        self._reload.clear()
        try:
            rules_by_tenant: dict[str, RuleSet] = self.reload_loader()
        except Exception as exc:
            # A bad rules file must not take down a running service:
            # keep the current generation and say so.
            print(f"reload failed, keeping current rules: {exc}")
            return
        self._reload_seq += 1
        generations = self.table.reload(rules_by_tenant, seq=self._reload_seq)
        self.reloads += 1
        if self._reload_counter is not None:
            self._reload_counter.inc()
        summary = ", ".join(
            f"{name}->gen{gen}" for name, gen in sorted(generations.items())
        )
        print(f"reloaded rules for {len(generations)} tenant(s): {summary}")

    def _shed_signals(self, polls: int) -> None:
        backlog = float(self.source.state().get("backlog_fraction", 0.0))
        p99_ns = 0.0
        if (
            self.shedder.policy.p99_budget_ns > 0
            and polls % self.config.profile_every == 0
        ):
            registry = self.table.processor(DEFAULT_TENANT).telemetry
            if registry is not None:
                profile = stage_profile(registry)
                stage = (profile or {}).get("stages", {}).get("fast_path", {})
                p99_ns = float(stage.get("p99_ns", 0.0))
        before = self.shedder.level
        level = self.shedder.update(backlog=backlog, p99_ns=p99_ns)
        if level != before:
            if self._shed_level_gauge is not None:
                self._shed_level_gauge.set(level)
            tracer = self.table.processor(DEFAULT_TENANT).tracer
            if tracer is not None:
                tracer.record_system(
                    "service", "shed_level", backlog=round(backlog, 3),
                    level=level,
                )

    def _dispose(self, packet: TimedPacket, buckets: dict[str, list[TimedPacket]]) -> None:
        """Route one decoded packet: shed it or bucket it for its tenant."""
        tenant = self.table.tenant_of(packet)
        processor = self.table.processor(tenant)
        if self.shedder.level > 0:
            try:
                flow = flow_key_of(packet.ip)
            except ValueError:
                flow = None  # non-first fragment: protect, never shed
            if flow is not None and self.shedder.should_shed(
                flow, engine=processor.engine, tracer=processor.tracer
            ):
                if self._shed_counter is not None:
                    self._shed_counter.labels(level=str(self.shedder.level)).inc()
                if processor.tracer is not None:
                    processor.tracer.record(
                        flow, "service", "shed", packet.timestamp,
                        level=self.shedder.level,
                    )
                return
        buckets.setdefault(tenant, []).append(packet)

    def run(self) -> ServiceReport:
        """Ingest until stopped/exhausted, then drain and account."""
        config = self.config
        started = monotonic()
        wall_start = perf_counter()
        polls = 0
        batches_routed = 0
        while not self._stop.is_set():
            if config.duration is not None and monotonic() - started >= config.duration:
                self._stop_reason = "duration"
                break
            if (
                config.max_packets is not None
                and self.input_records >= config.max_packets
            ):
                self._stop_reason = "max_packets"
                break
            if self.source.exhausted:
                self._stop_reason = "exhausted"
                break
            if self._reload.is_set():
                self._apply_reload()
            records = self.source.poll(config.batch_size, config.poll_timeout)
            polls += 1
            self._shed_signals(polls)
            if not records:
                continue
            self.input_records += len(records)
            buckets: dict[str, list[TimedPacket]] = {}
            for packet in decode_packets(records, self._quarantine):
                self._dispose(packet, buckets)
            for tenant, bucket in buckets.items():
                self.table.processor(tenant).feed(bucket)
                self.table.count(tenant, len(bucket))
                batches_routed += 1
        interrupted = self._stop_reason not in ("exhausted", "max_packets")
        # Drain: the same finish path the runners use, one report per
        # tenant pipeline; nothing already fed is dropped.
        reports = [
            processor.finish() for processor in self.table.processors.values()
        ]
        source_state = self.source.state()
        self.source.close()
        runtime = merge_shard_reports(
            reports,
            mode="serve",
            workers=len(reports),
            wall_seconds=perf_counter() - wall_start,
            batches_routed=batches_routed,
            shed_packets=self.shedder.shed_packets,
            quarantined=dict(self._quarantine.counts),
            interrupted=interrupted,
        )
        lost = int(source_state.get("overflow_dropped", 0))
        return ServiceReport(
            runtime=runtime,
            stop_reason=self._stop_reason,
            # Overflowed records never reached poll(); fold them into
            # the input so the identity covers everything *offered*.
            input_records=self.input_records + lost,
            examined_packets=runtime.stats.packets_total,
            shed_packets=self.shedder.shed_packets,
            quarantined_packets=runtime.quarantined_packets,
            lost_packets=lost,
            reloads=self.reloads,
            wall_seconds=runtime.wall_seconds,
            source=source_state,
            shed=self.shedder.state(),
            tenants=self.table.state(),
        )
