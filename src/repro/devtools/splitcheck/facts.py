"""Per-file semantic facts: the inputs of the project-level pass.

One AST walk per file produces a :class:`FileFacts` record -- symbol
definitions, the import alias map, call edges one level deep, metric and
trace-span registrations, worker wire-protocol emissions/dispatches,
sequence-arithmetic operations with one-level assignment taint, and
resource acquisition/disposal sites.  Facts are plain JSON-serializable
data: the incremental cache stores them keyed on a content fingerprint,
so an unchanged file contributes to the project graph without being
re-parsed, and ``splitdetect check --graph`` is just this structure
serialized.

Everything here is linter-approximate (no type inference); rules built
on these facts must prefer false negatives over false positives.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field
from typing import Any, Iterator

from .astutil import ImportMap, dotted_name

__all__ = ["FACTS_VERSION", "FileFacts", "extract_facts", "module_name"]

#: Bump when the extraction schema changes; the cache layer folds this
#: into its signature so stale facts are discarded, not misread.
FACTS_VERSION = 1

#: Instrument registration methods (``receiver.counter("name", ...)``).
_METRIC_KINDS = frozenset({"counter", "gauge", "histogram"})

#: Methods releasing an acquired resource.
_CLOSE_METHODS = frozenset({"close", "terminate", "kill", "shutdown", "release"})

#: Value-family names treated as TCP sequence numbers for taint: ``seq``,
#: ``ack``, and anything ending in ``_seq`` (``expected_seq``,
#: ``data_seq``, ...).  ``seq_len`` (a byte count) and ``has_seq`` (a
#: flag) are not sequence numbers and stay untainted.
_SEQ_EXACT = frozenset({"seq", "ack"})
_SEQ_NOT = frozenset({"has_seq"})

#: seq-helper calls: ``seq_add`` returns a sequence number (taint
#: propagates); ``seq_diff`` returns a signed delta (taint stops).
_SEQ_PRODUCERS = frozenset({"seq_add"})
_SEQ_HELPERS = frozenset({"seq_add", "seq_diff"})


def _is_seq_name(name: str) -> bool:
    lowered = name.lower()
    if lowered in _SEQ_NOT:
        return False
    return lowered in _SEQ_EXACT or lowered.endswith("_seq")


@dataclass
class FileFacts:
    """Everything the project pass knows about one file."""

    path: str
    module: str
    imports: dict[str, str] = field(default_factory=dict)
    functions: list[dict[str, Any]] = field(default_factory=list)
    classes: dict[str, dict[str, Any]] = field(default_factory=dict)
    calls: list[dict[str, Any]] = field(default_factory=list)
    metrics: list[dict[str, Any]] = field(default_factory=list)
    spans: list[dict[str, Any]] = field(default_factory=list)
    wire_puts: list[dict[str, Any]] = field(default_factory=list)
    wire_handles: list[dict[str, Any]] = field(default_factory=list)
    seq_ops: list[dict[str, Any]] = field(default_factory=list)
    seq_taints: dict[str, list[str]] = field(default_factory=dict)
    resources: list[dict[str, Any]] = field(default_factory=list)
    attr_releases: dict[str, list[str]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FileFacts":
        return cls(**data)


def module_name(rel_path: str) -> str:
    """Dotted module guess from a config-root-relative path."""
    parts = rel_path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def extract_facts(rel_path: str, tree: ast.Module, source: str) -> FileFacts:
    """One pass over ``tree`` producing the file's fact record."""
    extractor = _Extractor(rel_path, tree)
    extractor.run()
    return extractor.facts


def _own_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Every expression belonging directly to ``stmt``: its tests,
    targets, values -- but nothing from nested statement bodies, which
    the callers traverse separately in document order."""
    for _, value in ast.iter_fields(stmt):
        values = value if isinstance(value, list) else [value]
        for item in values:
            if isinstance(item, ast.expr):
                yield from (
                    sub for sub in ast.walk(item) if isinstance(sub, ast.expr)
                )


def _child_bodies(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    """Nested statement lists of a compound statement, in source order."""
    for _, value in ast.iter_fields(stmt):
        if not isinstance(value, list) or not value:
            continue
        if isinstance(value[0], ast.stmt):
            yield value
        elif isinstance(value[0], ast.excepthandler):
            for handler in value:
                yield handler.body


class _Extractor:
    def __init__(self, rel_path: str, tree: ast.Module) -> None:
        self.tree = tree
        self.imports = ImportMap(tree)
        self.facts = FileFacts(
            path=rel_path,
            module=module_name(rel_path),
            imports=dict(self.imports._aliases),
        )

    def run(self) -> None:
        self._collect_symbols()
        for qualname, node in self._scopes():
            self._scan_calls(qualname, node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_seq(qualname, node)
                self._scan_resources(qualname, node)
        self._collect_wire_handles()

    # -- scopes ----------------------------------------------------------

    def _scopes(self) -> list[tuple[str, ast.AST]]:
        """(qualname, node) for the module and every function, outermost
        first.  Nested functions chain their qualname through parents."""
        out: list[tuple[str, ast.AST]] = [("<module>", self.tree)]

        def descend(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}.{child.name}" if prefix else child.name
                    out.append((qual, child))
                    descend(child, qual)
                elif isinstance(child, ast.ClassDef):
                    qual = f"{prefix}.{child.name}" if prefix else child.name
                    descend(child, qual)
                else:
                    descend(child, prefix)

        descend(self.tree, "")
        return out

    def _walk_shallow(self, body: list[ast.stmt]) -> Iterator[ast.AST]:
        """Every node under ``body`` without entering nested function
        definitions (those are scanned as their own scopes)."""
        stack: list[ast.AST] = [
            node
            for node in body
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        while stack:
            current = stack.pop()
            yield current
            for child in ast.iter_child_nodes(current):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                stack.append(child)

    # -- symbols ---------------------------------------------------------

    def _collect_symbols(self) -> None:
        for qualname, node in self._scopes():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.facts.functions.append(
                    {
                        "qualname": qualname,
                        "name": node.name,
                        "lineno": node.lineno,
                        "args": [arg.arg for arg in node.args.args],
                    }
                )
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            attrs: set[str] = set()
            releases: set[str] = set()
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Attribute)
                    and self._is_self(sub.value)
                    and isinstance(sub.ctx, ast.Store)
                ):
                    attrs.add(sub.attr)
                if isinstance(sub, ast.Call):
                    func = sub.func
                    # self.attr.close()-family releases, and self.attr
                    # handed to another callable (ownership transfer).
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _CLOSE_METHODS
                        and isinstance(func.value, ast.Attribute)
                        and self._is_self(func.value.value)
                    ):
                        releases.add(func.value.attr)
                    for arg in [*sub.args, *(kw.value for kw in sub.keywords)]:
                        for leaf in ast.walk(arg):
                            if isinstance(leaf, ast.Attribute) and self._is_self(
                                leaf.value
                            ):
                                releases.add(leaf.attr)
            self.facts.classes[node.name] = {
                "lineno": node.lineno,
                "attrs": sorted(attrs),
                "bases": [
                    name
                    for name in (dotted_name(base) for base in node.bases)
                    if name is not None
                ],
            }
            if releases:
                self.facts.attr_releases[node.name] = sorted(releases)

    @staticmethod
    def _is_self(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in ("self", "cls")

    # -- calls, metrics, spans, wire puts --------------------------------

    def _scan_calls(self, qualname: str, scope: ast.AST) -> None:
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            body = list(scope.body)
        else:
            body = []
        for sub in self._walk_shallow(body):
            if isinstance(sub, ast.Call):
                self._record_call(qualname, sub)
                self._record_metric(sub)
                self._record_span(sub)
                self._record_wire_put(sub)

    def _record_call(self, qualname: str, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is None:
            return
        self.facts.calls.append(
            {
                "caller": qualname,
                "callee": self.imports.resolve(name),
                "raw": name,
                "lineno": node.lineno,
            }
        )

    def _record_metric(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _METRIC_KINDS):
            return
        if not (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            return
        self.facts.metrics.append(
            {
                "name": node.args[0].value,
                "kind": func.attr,
                "lineno": node.lineno,
                "col": node.col_offset,
            }
        )

    def _record_span(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in ("record", "record_system"):
            return
        receiver = dotted_name(func.value) or ""
        if "tracer" not in receiver.lower():
            return
        literals = node.args[1:3] if func.attr == "record" else node.args[0:2]
        if len(literals) != 2 or not all(
            isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            for arg in literals
        ):
            return
        stage, event = literals
        assert isinstance(stage, ast.Constant) and isinstance(event, ast.Constant)
        self.facts.spans.append(
            {
                "stage": stage.value,
                "event": event.value,
                "system": func.attr == "record_system",
                "lineno": node.lineno,
                "col": node.col_offset,
            }
        )

    # -- worker wire protocol --------------------------------------------

    @staticmethod
    def _is_result_queue(name: str | None) -> bool:
        return name is not None and (
            name.endswith("out_queue") or name.endswith("results_queue")
        )

    def _record_wire_put(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("put", "put_nowait")
            and self._is_result_queue(dotted_name(func.value))
        ):
            return
        if not node.args or not isinstance(node.args[0], ast.Tuple):
            return
        elts = node.args[0].elts
        if not elts:
            return
        head = elts[0]
        if not (isinstance(head, ast.Constant) and isinstance(head.value, str)):
            return
        self.facts.wire_puts.append(
            {
                "kind": head.value,
                "arity": len(elts),
                "lineno": node.lineno,
                "col": node.col_offset,
            }
        )

    def _from_result_queue_get(self, value: ast.expr) -> bool:
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("get", "get_nowait")
            and self._is_result_queue(dotted_name(value.func.value))
        )

    def _collect_wire_handles(self) -> None:
        """Dispatch arms over message kinds read from a results queue.

        A *wire variable* is the first target of a tuple unpack from
        ``<...>out_queue.get[_nowait]()``.  Passing one as the first
        positional argument of a locally-defined function taints that
        function's first parameter (the one-level call edge).  Every
        ``wirevar == "literal"`` comparison then records a handled kind;
        rebinding the name (a ``for`` target, a fresh assignment) ends
        its wire-ness, which keeps the batching layer's unrelated
        ``kind == "ctl"`` comparisons out of the protocol facts.
        """
        functions_by_name: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions_by_name.setdefault(node.name, node)

        pending: list[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]] = []
        tainted_fns: set[str] = set()

        def scan_stmt(stmt: ast.stmt, wire: set[str]) -> None:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return
            # Rebinding first: a for-loop target shadows any wire var.
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                for leaf in ast.walk(stmt.target):
                    if isinstance(leaf, ast.Name):
                        wire.discard(leaf.id)
            for expr in _own_exprs(stmt):
                if isinstance(expr, ast.Compare) and isinstance(expr.left, ast.Name):
                    if (
                        expr.left.id in wire
                        and len(expr.ops) == 1
                        and isinstance(expr.ops[0], (ast.Eq, ast.NotEq))
                    ):
                        comparator = expr.comparators[0]
                        if isinstance(comparator, ast.Constant) and isinstance(
                            comparator.value, str
                        ):
                            self.facts.wire_handles.append(
                                {
                                    "kind": comparator.value,
                                    "lineno": expr.lineno,
                                    "col": expr.col_offset,
                                }
                            )
                elif isinstance(expr, ast.Call):
                    name = dotted_name(expr.func)
                    if (
                        name is not None
                        and name in functions_by_name
                        and name not in tainted_fns
                        and expr.args
                        and isinstance(expr.args[0], ast.Name)
                        and expr.args[0].id in wire
                    ):
                        fn = functions_by_name[name]
                        if fn.args.args:
                            tainted_fns.add(name)
                            pending.append((fn, fn.args.args[0].arg))
            if isinstance(stmt, ast.Assign):
                target = stmt.targets[0] if len(stmt.targets) == 1 else None
                if isinstance(target, ast.Tuple) and self._from_result_queue_get(
                    stmt.value
                ):
                    names = [
                        elt.id for elt in target.elts if isinstance(elt, ast.Name)
                    ]
                    if names:
                        wire.add(names[0])
                        self.facts.wire_handles.append(
                            {
                                "kind": None,
                                "arity": len(target.elts),
                                "lineno": stmt.lineno,
                                "col": stmt.col_offset,
                            }
                        )
                else:
                    for tgt in stmt.targets:
                        for leaf in ast.walk(tgt):
                            if isinstance(leaf, ast.Name):
                                wire.discard(leaf.id)
            for body in _child_bodies(stmt):
                for sub in body:
                    scan_stmt(sub, wire)

        for _, scope in self._scopes():
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
                wire: set[str] = set()
                for stmt in scope.body:
                    scan_stmt(stmt, wire)
        # One level deep: re-scan each called function with its first
        # parameter pre-tainted.
        while pending:
            fn, param = pending.pop()
            wire = {param}
            for stmt in fn.body:
                scan_stmt(stmt, wire)

    # -- sequence arithmetic ---------------------------------------------

    def _seq_helper_tail(self, node: ast.Call) -> str | None:
        name = dotted_name(node.func)
        if name is None:
            return None
        tail = name.split(".")[-1]
        return tail if tail in _SEQ_HELPERS else None

    def _expr_seq_tainted(self, expr: ast.expr, taint: set[str]) -> bool:
        """Does a seq-family value feed ``expr``?  Call subtrees are
        pruned: a call returns a *new* value, so ``pack(self.seq, ...)``
        is bytes and ``seq_diff(a.seq, b)`` is a signed delta; only
        ``seq_add(...)`` results remain sequence numbers.  (Raw
        arithmetic *inside* call arguments is still caught -- every
        BinOp/Compare node is checked at its own site.)"""
        if isinstance(expr, ast.Call):
            tail = self._seq_helper_tail(expr)
            return tail in _SEQ_PRODUCERS if tail is not None else False
        elif isinstance(expr, ast.Name):
            return expr.id in taint or _is_seq_name(expr.id)
        elif isinstance(expr, ast.Attribute):
            if _is_seq_name(expr.attr):
                return True
        return any(
            self._expr_seq_tainted(child, taint)
            for child in ast.iter_child_nodes(expr)
            if isinstance(child, ast.expr)
        )

    @staticmethod
    def _is_mod_reduction(node: ast.AST, parents: dict[ast.AST, ast.AST]) -> bool:
        """Is this arithmetic immediately reduced mod 2**32 (the helper
        idiom itself)?"""
        parent = parents.get(node)
        if isinstance(parent, ast.BinOp) and isinstance(
            parent.op, (ast.Mod, ast.BitAnd)
        ):
            other = parent.right if parent.left is node else parent.left
            for leaf in ast.walk(other):
                if isinstance(leaf, ast.Constant) and leaf.value in (2**32, 0xFFFFFFFF):
                    return True
                if (  # 2**32 parses as BinOp(Pow), not a folded constant
                    isinstance(leaf, ast.BinOp)
                    and isinstance(leaf.op, ast.Pow)
                    and isinstance(leaf.left, ast.Constant)
                    and isinstance(leaf.right, ast.Constant)
                    and leaf.left.value == 2
                    and leaf.right.value == 32
                ):
                    return True
                if isinstance(leaf, ast.Name) and "MOD" in leaf.id.upper():
                    return True
                if isinstance(leaf, ast.Attribute) and "MOD" in leaf.attr.upper():
                    return True
        return False

    _RAW_BINOPS: dict[type, str] = {ast.Add: "+", ast.Sub: "-"}
    _RAW_CMPOPS: dict[type, str] = {
        ast.Lt: "<",
        ast.Gt: ">",
        ast.LtE: "<=",
        ast.GtE: ">=",
    }

    def _scan_seq(
        self, qualname: str, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if fn.name.startswith("seq_"):
            return  # the modular-arithmetic helper family itself
        parents: dict[ast.AST, ast.AST] = {}
        for node in self._walk_shallow(fn.body):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        taint: set[str] = set()

        def visit(stmt: ast.stmt) -> None:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return
            self._check_seq_stmt(qualname, stmt, taint, parents)
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if self._expr_seq_tainted(stmt.value, taint):
                        taint.add(target.id)
                    else:
                        taint.discard(target.id)
            for body in _child_bodies(stmt):
                for sub in body:
                    visit(sub)

        for stmt in fn.body:
            visit(stmt)
        if taint:
            self.facts.seq_taints[qualname] = sorted(taint)

    def _check_seq_stmt(
        self,
        qualname: str,
        stmt: ast.stmt,
        taint: set[str],
        parents: dict[ast.AST, ast.AST],
    ) -> None:
        if isinstance(stmt, ast.AugAssign) and type(stmt.op) in self._RAW_BINOPS:
            target_name = (
                stmt.target.attr
                if isinstance(stmt.target, ast.Attribute)
                else stmt.target.id
                if isinstance(stmt.target, ast.Name)
                else ""
            )
            if _is_seq_name(target_name) or (
                isinstance(stmt.target, ast.Name) and stmt.target.id in taint
            ):
                self.facts.seq_ops.append(
                    {
                        "op": self._RAW_BINOPS[type(stmt.op)] + "=",
                        "scope": qualname,
                        "lineno": stmt.lineno,
                        "col": stmt.col_offset,
                    }
                )
        for node in _own_exprs(stmt):
            if isinstance(node, ast.BinOp) and type(node.op) in self._RAW_BINOPS:
                if self._is_mod_reduction(node, parents):
                    continue
                if self._expr_seq_tainted(node.left, taint) or self._expr_seq_tainted(
                    node.right, taint
                ):
                    self.facts.seq_ops.append(
                        {
                            "op": self._RAW_BINOPS[type(node.op)],
                            "scope": qualname,
                            "lineno": node.lineno,
                            "col": node.col_offset,
                        }
                    )
            elif isinstance(node, ast.Compare):
                left: ast.expr = node.left
                for op, comparator in zip(node.ops, node.comparators):
                    if type(op) in self._RAW_CMPOPS and (
                        self._expr_seq_tainted(left, taint)
                        or self._expr_seq_tainted(comparator, taint)
                    ):
                        self.facts.seq_ops.append(
                            {
                                "op": self._RAW_CMPOPS[type(op)],
                                "scope": qualname,
                                "lineno": node.lineno,
                                "col": node.col_offset,
                            }
                        )
                    left = comparator

    # -- resource lifecycle ----------------------------------------------

    def _acquisition_kind(self, node: ast.Call) -> str | None:
        name = dotted_name(node.func)
        if name is None:
            return None
        resolved = self.imports.resolve(name)
        if resolved in (
            "socket.socket",
            "socket.create_connection",
            "socket.socketpair",
        ):
            return "socket"
        if resolved in ("open", "io.open", "builtins.open", "gzip.open", "lzma.open"):
            return "file"
        tail = name.split(".")[-1]
        head = name.split(".")[0]
        mp_receiver = head in ("ctx", "mp", "context") or resolved.startswith(
            "multiprocessing."
        )
        if tail in ("Queue", "SimpleQueue", "JoinableQueue") and mp_receiver:
            return "queue"
        if tail == "Process" and mp_receiver:
            return "process"
        return None

    def _scan_resources(
        self, qualname: str, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        managed: set[ast.AST] = set()  # inside `with ...` or a comprehension
        parents: dict[ast.AST, ast.AST] = {}
        for node in self._walk_shallow(fn.body):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    managed.update(ast.walk(item.context_expr))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                managed.update(ast.walk(node))

        acquisitions: list[tuple[str, ast.Call]] = []
        for node in self._walk_shallow(fn.body):
            if isinstance(node, ast.Call) and node not in managed:
                kind = self._acquisition_kind(node)
                if kind is not None:
                    acquisitions.append((kind, node))
        if not acquisitions:
            return

        owner_class = self._owner_class(qualname)
        for kind, call in acquisitions:
            record: dict[str, Any] = {
                "kind": kind,
                "scope": qualname,
                "cls": owner_class,
                "lineno": call.lineno,
                "col": call.col_offset,
                "disposition": "escape",
                "name": None,
                "attr": None,
                "closed": False,
                "closed_in_finally": False,
                "escape": False,
                "leaky_return": False,
            }
            stmt = self._owning_stmt(call, parents)
            if (
                isinstance(stmt, ast.Assign)
                and stmt.value is call
                and len(stmt.targets) == 1
            ):
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    record["disposition"] = "local"
                    record["name"] = target.id
                elif isinstance(target, ast.Attribute) and self._is_self(target.value):
                    record["disposition"] = "self"
                    record["attr"] = target.attr
            elif isinstance(stmt, ast.Expr) and stmt.value is call:
                record["disposition"] = "discarded"
            if record["disposition"] == "local":
                self._scan_local_resource(fn, record)
            self.facts.resources.append(record)

    def _owner_class(self, qualname: str) -> str | None:
        head = qualname.split(".")[0]
        return head if head in self.facts.classes else None

    @staticmethod
    def _owning_stmt(
        node: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> ast.stmt | None:
        current: ast.AST | None = parents.get(node)
        while current is not None and not isinstance(current, ast.stmt):
            current = parents.get(current)
        return current

    def _scan_local_resource(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, record: dict[str, Any]
    ) -> None:
        name = record["name"]
        acquired_line = record["lineno"]
        close_lines: list[int] = []
        finally_ranges: list[tuple[int, int]] = []
        return_lines: list[int] = []
        for node in self._walk_shallow(fn.body):
            if isinstance(node, ast.Try) and node.finalbody:
                start = node.finalbody[0].lineno
                end = max(
                    getattr(leaf, "lineno", start)
                    for stmt in node.finalbody
                    for leaf in ast.walk(stmt)
                )
                finally_ranges.append((start, end))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _CLOSE_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name
                ):
                    close_lines.append(node.lineno)
                    continue
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    for leaf in ast.walk(arg):
                        if isinstance(leaf, ast.Name) and leaf.id == name:
                            record["escape"] = True
            elif isinstance(node, ast.Return):
                return_lines.append(node.lineno)
                if node.value is not None:
                    for leaf in ast.walk(node.value):
                        if isinstance(leaf, ast.Name) and leaf.id == name:
                            record["escape"] = True
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and self._is_self(target.value)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == name
                    ):
                        record["disposition"] = "self"
                        record["attr"] = target.attr
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == name:
                        close_lines.append(node.lineno)
                    elif (
                        isinstance(expr, ast.Call)
                        and expr.args
                        and isinstance(expr.args[0], ast.Name)
                        and expr.args[0].id == name
                    ):
                        close_lines.append(node.lineno)
        if close_lines:
            record["closed"] = True
            record["closed_in_finally"] = any(
                start <= line <= end
                for line in close_lines
                for start, end in finally_ranges
            )
            first_close = min(close_lines)
            record["leaky_return"] = (
                any(acquired_line < line < first_close for line in return_lines)
                and not record["closed_in_finally"]
            )
