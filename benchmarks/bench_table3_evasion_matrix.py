"""Table 3 -- detection coverage across the full evasion catalog.

Every FragRoute / Ptacek-Newsham strategy versus three engines.  Shape to
reproduce: Split-Detect and the conventional IPS detect 100% of delivered
attacks; the naive per-packet matcher misses exactly the strategies that
hide the signature from single-packet inspection.
"""

import sys

from exp_common import (
    ATTACK_SIGNATURE,
    attack_packets,
    detected,
    emit,
    gauntlet_ruleset,
    run_engine,
)
from repro.core import ConventionalIPS, NaivePacketIPS, SplitDetectIPS
from repro.evasion import STRATEGIES, Victim


def matrix_rows() -> tuple[list[str], dict]:
    lines = [
        f"{'strategy':<18} {'delivered':>9} {'naive':>6} {'conventional':>12} {'split-detect':>12}"
    ]
    summary = {"split_hits": 0, "conv_hits": 0, "naive_misses": 0, "delivered": 0}
    for name in sorted(STRATEGIES):
        strategy = STRATEGIES[name]
        packets = attack_packets(name)
        victim = Victim(
            policy=strategy.victim_policy, hops_behind_ips=strategy.victim_hops
        )
        victim.deliver_all(packets)
        delivered = victim.received(ATTACK_SIGNATURE)

        naive_hit = detected(run_engine(NaivePacketIPS(gauntlet_ruleset()), packets))
        conv_hit = detected(run_engine(ConventionalIPS(gauntlet_ruleset()), packets))
        split_hit = detected(run_engine(SplitDetectIPS(gauntlet_ruleset()), packets))
        summary["delivered"] += delivered
        summary["split_hits"] += split_hit
        summary["conv_hits"] += conv_hit
        summary["naive_misses"] += not naive_hit
        lines.append(
            f"{name:<18} {'yes' if delivered else 'NO':>9} "
            f"{'HIT' if naive_hit else 'miss':>6} "
            f"{'HIT' if conv_hit else 'miss':>12} "
            f"{'HIT' if split_hit else 'miss':>12}"
        )
    total = len(STRATEGIES)
    lines.append("")
    lines.append(
        f"split-detect {summary['split_hits']}/{total}, "
        f"conventional {summary['conv_hits']}/{total}, "
        f"naive evaded by {summary['naive_misses']}/{total}"
    )
    return lines, summary


def test_table3_evasion_matrix(benchmark, capfd):
    def full_split_detect_gauntlet():
        hits = 0
        for name in sorted(STRATEGIES):
            packets = attack_packets(name)
            hits += detected(run_engine(SplitDetectIPS(gauntlet_ruleset()), packets))
        return hits

    hits = benchmark.pedantic(full_split_detect_gauntlet, rounds=2, iterations=1)
    assert hits == len(STRATEGIES)
    lines, summary = matrix_rows()
    emit("table3_evasion_matrix", lines, capfd)
    assert summary["delivered"] == len(STRATEGIES)
    assert summary["split_hits"] == len(STRATEGIES)
    assert summary["conv_hits"] == len(STRATEGIES)
    assert summary["naive_misses"] >= 5  # the segmentation/fragmentation class


if __name__ == "__main__":
    print("\n".join(matrix_rows()[0]), file=sys.stderr)
