"""Figure 4 -- benign diversion rate vs the small-packet threshold B.

Sweeps B over benign traces with two reordering regimes.  Shape to
reproduce: diversion stays in low single digits for practical B and
grows as B approaches common benign segment sizes (256, 576); more
reordering shifts the whole curve up.  This is the operating-point curve
an operator reads to pick B.
"""

import sys

from exp_common import benign_trace, bundled_rules, emit
from repro.core import FastPathConfig, SplitDetectIPS
from repro.metrics import run_split_detect

THRESHOLDS = (8, 16, 32, 64, 128, 192, 256, 320)


def series_rows() -> list[str]:
    rules = bundled_rules()
    lines = [
        f"{'B':>5} {'reorder=0.2%':>24} {'reorder=2%':>24}",
        f"{'':>5} {'flows%':>11} {'bytes%':>12} {'flows%':>11} {'bytes%':>12}",
    ]
    quiet = benign_trace(flows=250, seed=41)
    noisy = benign_trace(flows=250, seed=42, reorder_rate=0.02)
    total_flows = 250
    for threshold in THRESHOLDS:
        cells = []
        for trace in (quiet, noisy):
            ips = SplitDetectIPS(
                rules, fast_config=FastPathConfig(threshold_override=threshold)
            )
            report = run_split_detect(ips, trace, sample_every=500)
            cells.append(
                (report.diverted_flows / total_flows, report.diversion_byte_fraction)
            )
        lines.append(
            f"{threshold:>5} {cells[0][0]:>11.1%} {cells[0][1]:>12.1%} "
            f"{cells[1][0]:>11.1%} {cells[1][1]:>12.1%}"
        )
    return lines


def test_fig4_diversion_vs_threshold(benchmark, capfd):
    rules = bundled_rules()
    trace = benign_trace(flows=250, seed=41)

    def one_point():
        ips = SplitDetectIPS(rules, fast_config=FastPathConfig(threshold_override=16))
        return run_split_detect(ips, trace, sample_every=500)

    report = benchmark.pedantic(one_point, rounds=2, iterations=1)
    # Operating point: benign diversion must stay modest at the default B.
    assert report.diverted_flows / 250 < 0.25
    emit("fig4_diversion_vs_threshold", series_rows(), capfd)


if __name__ == "__main__":
    print("\n".join(series_rows()), file=sys.stderr)
