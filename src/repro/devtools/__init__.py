"""Developer tooling that ships with the package but stays off the hot path.

Nothing under :mod:`repro.devtools` is imported by the engines, the
runners, or the CLI's packet-processing commands; these are the tools
that keep *those* modules honest (static invariant analysis, typing
gates).  See :mod:`repro.devtools.splitcheck`.
"""

from __future__ import annotations

__all__: list[str] = []
