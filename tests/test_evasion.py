"""Validity tests for the evasion catalog.

Every strategy must actually *work as an attack*: the emulated victim
(with the policy/hops the strategy targets) must receive the signature
bytes in its application stream.  Strategies that corrupt their own
payload would make the detection matrix meaningless.
"""

import pytest

from helpers import ATTACK_SIGNATURE, attack_payload, signature_span
from repro.evasion import (
    STRATEGIES,
    AttackSpec,
    Victim,
    build_attack,
    even_segments,
    plan_coverage,
    plan_to_packets,
)
from repro.packet import IPv4Packet, decode_tcp
from repro.streams import OverlapPolicy


class TestPlan:
    def test_even_segments_cover_payload(self):
        segs = even_segments(b"x" * 1000, 300)
        assert plan_coverage(segs) == 1000
        assert [len(s.data) for s in segs] == [300, 300, 300, 100]
        assert segs[-1].fin and not segs[0].fin

    def test_even_segments_empty_payload(self):
        segs = even_segments(b"", 300)
        assert len(segs) == 1 and segs[0].fin and segs[0].data == b""

    def test_plan_to_packets_sequence_numbers(self):
        segs = even_segments(b"abcdef", 3)
        packets = plan_to_packets(segs, isn=5000)
        tcp = [decode_tcp(p.ip) for p in packets]
        assert tcp[0].syn and tcp[0].seq == 5000
        assert tcp[1].seq == 5001 and tcp[1].payload == b"abc"
        assert tcp[2].seq == 5004 and tcp[2].fin

    def test_packets_are_wire_valid(self):
        packets = build_attack("plain", attack_payload())
        for packet in packets:
            reparsed = IPv4Packet.parse(packet.ip.serialize())
            assert reparsed == packet.ip

    def test_timestamps_monotonic(self):
        packets = build_attack("tcp_seg_8", attack_payload())
        times = [p.timestamp for p in packets]
        assert times == sorted(times)


class TestCatalogValidity:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_attack_reaches_its_victim(self, name):
        strategy = STRATEGIES[name]
        payload = attack_payload()
        packets = build_attack(name, payload, signature_span=signature_span())
        victim = Victim(policy=strategy.victim_policy, hops_behind_ips=strategy.victim_hops)
        victim.deliver_all(packets)
        assert victim.received(ATTACK_SIGNATURE), f"{name} failed to deliver"

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_full_payload_delivered(self, name):
        strategy = STRATEGIES[name]
        payload = attack_payload()
        packets = build_attack(name, payload, signature_span=signature_span())
        victim = Victim(policy=strategy.victim_policy, hops_behind_ips=strategy.victim_hops)
        victim.deliver_all(packets)
        assert victim.received(payload), f"{name} corrupted the stream"

    def test_ttl_chaff_drops_at_victim(self):
        packets = build_attack("ttl_chaff", attack_payload())
        victim = Victim(policy=OverlapPolicy.FIRST, hops_behind_ips=4)
        victim.deliver_all(packets)
        assert victim.packets_dropped > 0

    def test_overlap_old_blinds_last_policy_observer(self):
        # The same packets, reassembled with the wrong policy, hide the attack.
        payload = attack_payload()
        packets = build_attack("tcp_overlap_old", payload)
        blinded = Victim(policy=OverlapPolicy.LAST)
        blinded.deliver_all(packets)
        assert not blinded.received(ATTACK_SIGNATURE)

    def test_ip_frag_overlap_blinds_last_policy_observer(self):
        payload = attack_payload()
        packets = build_attack("ip_frag_overlap", payload)
        blinded = Victim(policy=OverlapPolicy.LAST)
        blinded.deliver_all(packets)
        assert not blinded.received(ATTACK_SIGNATURE)

    def test_tiny_segments_are_actually_tiny(self):
        packets = build_attack("tcp_seg_1", attack_payload(total=50))
        sizes = [len(decode_tcp(p.ip).payload) for p in packets if not p.ip.is_fragment]
        data_sizes = [s for s in sizes if s]
        assert data_sizes and max(data_sizes) == 1

    def test_ip_frag_8_produces_8_byte_fragments(self):
        packets = build_attack("ip_frag_8", attack_payload(total=200))
        frag_sizes = {
            len(p.ip.payload) for p in packets if p.ip.is_fragment and p.ip.more_fragments
        }
        assert frag_sizes == {8}

    def test_stealth_cuts_signature_across_packets(self):
        payload = attack_payload()
        packets = build_attack("stealth_segments", payload, signature_span=signature_span())
        carried = [decode_tcp(p.ip).payload for p in packets if not p.ip.is_fragment]
        assert all(ATTACK_SIGNATURE not in chunk for chunk in carried)

    def test_strategies_deterministic_given_seed(self):
        a = build_attack("tcp_reorder", attack_payload(), seed=3)
        b = build_attack("tcp_reorder", attack_payload(), seed=3)
        assert [p.ip for p in a] == [p.ip for p in b]
