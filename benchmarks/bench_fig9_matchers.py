"""Figure 9 (micro) -- matcher engine throughput.

Software scan rates for the three matching engines on benign payloads:
Aho-Corasick with the full piece set, Aho-Corasick with a single pattern,
Boyer-Moore-Horspool, and the naive reference.  These anchor the cost
model's "1 reference per scanned byte" abstraction and show BMH's
sublinear skipping on real payloads.
"""

import random
import sys

from exp_common import bundled_rules, emit
from repro.match import AhoCorasick, BoyerMooreHorspool, naive_find_all
from repro.signatures import split_ruleset
from repro.traffic import benign_payload

PAYLOAD_SIZE = 65_536
PATTERN = b"EVIL-PAYLOAD\x90\x90\x90\x90"


def payload() -> bytes:
    return benign_payload(random.Random(77), PAYLOAD_SIZE)


def rate_of(benchmark_stats, nbytes: int) -> float:
    return nbytes / benchmark_stats["mean"] / 1e6


def test_fig9_ac_full_pieceset(benchmark, capfd):
    pieces = split_ruleset(bundled_rules()).all_pieces()
    automaton = AhoCorasick([piece.data for piece in pieces])
    data = payload()
    benchmark(automaton.find_all, data)
    with capfd.disabled():
        print(
            f"\nAC (full {len(pieces)}-piece set): "
            f"{rate_of(benchmark.stats, len(data)):.2f} MB/s",
            file=sys.stderr,
        )


def test_fig9_ac_single_pattern(benchmark, capfd):
    automaton = AhoCorasick([PATTERN])
    data = payload()
    benchmark(automaton.find_all, data)
    with capfd.disabled():
        print(
            f"AC (single pattern): {rate_of(benchmark.stats, len(data)):.2f} MB/s",
            file=sys.stderr,
        )


def test_fig9_bmh_single_pattern(benchmark, capfd):
    matcher = BoyerMooreHorspool(PATTERN)
    data = payload()
    benchmark(matcher.find_all, data)
    with capfd.disabled():
        print(
            f"BMH (single pattern): {rate_of(benchmark.stats, len(data)):.2f} MB/s",
            file=sys.stderr,
        )


def test_fig9_naive_single_pattern(benchmark, capfd):
    data = payload()[:8192]  # quadratic reference; keep it small
    benchmark(naive_find_all, PATTERN, data)
    with capfd.disabled():
        print(
            f"naive (single pattern, 8 KiB): "
            f"{rate_of(benchmark.stats, len(data)):.2f} MB/s",
            file=sys.stderr,
        )
    emit(
        "fig9_matchers",
        ["see pytest-benchmark table in bench_output.txt for the timing rows"],
    )
