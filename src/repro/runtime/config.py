"""Runner configuration shared by the serial and parallel front-ends."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .faults import FaultPlan
from .sharding import ShardPolicy

__all__ = ["Backpressure", "RunnerConfig"]


class Backpressure(enum.Enum):
    """What the feeder does when a shard's bounded queue is full."""

    BLOCK = "block"
    """Wait for the worker: lossless, the reader slows to the pipeline's
    pace (the IPS-on-a-tap equivalent of NIC flow control)."""

    SHED = "shed"
    """Drop the batch and count it: bounded latency, explicit loss --
    what a wire-speed appliance does when a shard falls behind.  Shed
    packets are never examined; the count is the coverage hole."""


@dataclass(frozen=True)
class RunnerConfig:
    """Knobs shared by :class:`SerialRunner` and :class:`ParallelRunner`."""

    batch_size: int = 256
    """Packets per routed batch (also the prescan amortization unit)."""

    shard_policy: ShardPolicy = ShardPolicy.FLOW
    """Shard-key policy; see :mod:`repro.runtime.sharding`."""

    backpressure: Backpressure = Backpressure.BLOCK
    """Full-queue behaviour (parallel runner only; the serial runner is
    synchronous and can never fall behind itself)."""

    queue_depth: int = 8
    """Bounded batches in flight per worker queue."""

    evict_interval: float | None = None
    """Seconds of *packet time* between automatic ``evict_idle`` sweeps
    on each shard.  ``None`` (default) disables the sweeps, preserving
    the historical behaviour where callers evict explicitly."""

    telemetry: bool = False
    """Give each shard its own :class:`TelemetryRegistry` and merge the
    snapshots into the combined report."""

    trace: bool = False
    """Give each shard its own :class:`~repro.telemetry.FlowTracer`
    flight recorder and merge the span buffers into ``report.trace``
    (outside the equivalence digest, like telemetry and the sketch)."""

    trace_sample: int = 1
    """Trace 1-in-N flows (``trace_id % N == 0``); diverted flows are
    always traced regardless.  1 traces everything."""

    trace_capacity: int = 4096
    """Span-ring capacity per shard tracer (oldest spans drop first)."""

    sample_state: bool = True
    """Sample peak state/flow occupancy after every shard batch (the
    run-harness convention); disable for pure-throughput benchmarks."""

    drain_timeout: float = 120.0
    """Seconds the parallel runner waits for a worker to flush its
    queue and report results after the drain sentinel, before declaring
    the run failed."""

    start_method: str | None = None
    """``multiprocessing`` start method (``fork``/``spawn``/...); None
    picks the platform default."""

    max_restarts: int = 0
    """Per-shard restart budget.  0 (default) keeps the historical
    fail-fast contract: any worker death raises
    :class:`~repro.runtime.parallel.WorkerFailure`.  A positive value
    turns on supervision: dead or hung workers are restarted with a
    fresh engine (exponential backoff), the loss is recorded as a
    :class:`~repro.runtime.report.DegradedInterval`, and a shard whose
    budget is exhausted is marked dead -- the run still completes, with
    that shard's subsequent traffic counted as lost."""

    restart_backoff: float = 0.05
    """Base seconds of the supervisor's exponential restart backoff
    (the n-th restart of a shard waits ``restart_backoff * 2**n``)."""

    heartbeat_interval: float = 0.2
    """Supervised workers flush a result delta (or an idle heartbeat) at
    least this often, bounding both failure-detection latency and how
    much confirmed work a crash can lose."""

    heartbeat_timeout: float = 5.0
    """Seconds of heartbeat silence after which a supervised worker that
    is still alive is declared hung, killed, and restarted."""

    faults: FaultPlan | None = None
    """Deterministic fault-injection plan (tests/chaos CI only); None
    disables every injection point."""

    ingest: str = "object"
    """Ingest mode: ``"object"`` parses every frame into packet objects
    (the historical path), ``"columnar"`` feeds the engine whole
    :class:`~repro.packet.batch.PacketBatch` columns and materializes
    objects only for flagged rows.  Columnar ingest is incompatible
    with fault injection (the injection points are defined over object
    batches)."""

    @property
    def supervised(self) -> bool:
        """True when worker supervision (restart + degraded mode) is on."""
        return self.max_restarts > 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.trace_sample < 1:
            raise ValueError(f"trace_sample must be >= 1, got {self.trace_sample}")
        if self.trace_capacity < 1:
            raise ValueError(
                f"trace_capacity must be >= 1, got {self.trace_capacity}"
            )
        if self.evict_interval is not None and self.evict_interval <= 0:
            raise ValueError(
                f"evict_interval must be positive, got {self.evict_interval}"
            )
        if self.drain_timeout <= 0:
            raise ValueError(f"drain_timeout must be positive, got {self.drain_timeout}")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.restart_backoff <= 0:
            raise ValueError(
                f"restart_backoff must be positive, got {self.restart_backoff}"
            )
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval, got "
                f"{self.heartbeat_timeout} <= {self.heartbeat_interval}"
            )
        if self.ingest not in ("object", "columnar"):
            raise ValueError(
                f"ingest must be 'object' or 'columnar', got {self.ingest!r}"
            )
        if self.ingest == "columnar" and self.faults is not None:
            raise ValueError("fault injection is incompatible with columnar ingest")
