"""Split-Detect: detecting evasion attacks at high speeds without reassembly.

A from-scratch reproduction of Varghese, Fingerhut & Bonomi (SIGCOMM 2006).
Subpackages:

- ``repro.packet``     wire-format IPv4/TCP/Ethernet models
- ``repro.pcap``       libpcap savefile I/O
- ``repro.streams``    TCP reassembly, IP defragmentation, normalization
- ``repro.match``      Aho-Corasick and Boyer-Moore-Horspool string matching
- ``repro.signatures`` signature corpus, Snort-content rule parser, the splitter
- ``repro.core``       the Split-Detect IPS and the conventional-IPS baseline
- ``repro.evasion``    FragRoute-style evasion transforms
- ``repro.traffic``    synthetic benign/attack trace generation
- ``repro.metrics``    state and processing cost models, throughput estimation
- ``repro.theory``     the detection theorem as executable predicates

See README.md for a quickstart and DESIGN.md for the full system inventory.
"""

__version__ = "1.0.0"
