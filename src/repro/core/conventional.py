"""Baselines: the conventional IPS and the naive per-packet matcher.

``ConventionalIPS`` is the paradigm the paper breaks with: defragment,
reassemble, and normalize *every* flow, then stream-match every signature
over the canonical byte stream.  It detects all the evasions Split-Detect
does; the point of the comparison is its state and processing bill.

``NaivePacketIPS`` is the strawman Ptacek-Newsham attacks were aimed at:
per-packet matching with no reassembly at all.  It exists so the evasion
matrix (Table 3) can show exactly which attack classes defeat it.
"""

from __future__ import annotations

from time import perf_counter_ns

from ..match import DualStreamMatcher
from ..packet import (
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    FlowKey,
    TimedPacket,
    decode_tcp,
    decode_udp,
    flow_key_of,
)
from ..signatures import RuleSet
from ..streams import OverlapPolicy, StreamEvent, StreamNormalizer
from ..telemetry import LATENCY_NS_BUCKETS, NULL_REGISTRY
from .alerts import Alert, AlertKind
from .matching import SignatureMatcher, StreamMatchState

#: Reassembly buffering a conventional IPS must provision per connection
#: (the paper's standards point: 1M connections, each able to buffer an
#: out-of-order window).  Used for extrapolation and for the live
#: state-ratio gauge, not for measurement.
PROVISIONED_BUFFER_PER_FLOW = 4096

_AMBIGUITY_EVENTS = frozenset(
    {
        StreamEvent.INCONSISTENT_OVERLAP,
        StreamEvent.INCONSISTENT_FRAGMENT_OVERLAP,
        StreamEvent.TTL_ANOMALY,
    }
)


class ConventionalIPS:
    """Reassemble-and-normalize-everything signature detection."""

    def __init__(
        self,
        rules: RuleSet,
        *,
        policy: OverlapPolicy = OverlapPolicy.BSD,
        telemetry=None,
    ) -> None:
        self.normalizer = StreamNormalizer(policy=policy)
        self._matcher = SignatureMatcher(sorted(rules, key=lambda s: s.sid))
        self._streams: dict[FlowKey, StreamMatchState] = {}
        self.packets_processed = 0
        self.bytes_normalized = 0
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        tel = self.telemetry
        self._tel_on = tel.enabled
        self._c_packets = tel.counter(
            "repro_conventional_packets_total",
            "Packets through the conventional reassemble-everything pipeline",
        )
        self._c_bytes = tel.counter(
            "repro_conventional_normalized_bytes_total",
            "Reassembled-and-normalized stream bytes matched",
        )
        self._c_alerts = tel.counter(
            "repro_conventional_alerts_total", "Alerts raised"
        )
        self._c_evictions = tel.counter(
            "repro_conventional_evictions_total", "Idle flows reclaimed"
        )
        self._h_latency = tel.histogram(
            "repro_conventional_packet_latency_ns",
            "Full normalize+match pipeline latency per packet",
            buckets=LATENCY_NS_BUCKETS,
        )
        self._g_flows = tel.gauge(
            "repro_conventional_active_flows",
            "Flows holding reassembly state",
            merge="sum",
        )
        self._g_state = tel.gauge(
            "repro_conventional_state_bytes",
            "Reassembly buffers + flow table + matcher state "
            "(the numerator every-flow cost Split-Detect avoids)",
            merge="sum",
        )

    # -- accounting ------------------------------------------------------

    def state_bytes(self) -> int:
        """Reassembly buffers + flow table + per-direction matcher state."""
        return (
            self.normalizer.state_bytes()
            + len(self._streams) * DualStreamMatcher.STATE_BYTES
        )

    @property
    def active_flows(self) -> int:
        """Flows currently holding reassembly state."""
        return self.normalizer.active_flows

    def refresh_telemetry(self) -> None:
        """Sample the O(flows) gauges (called before snapshots, not inline)."""
        if not self._tel_on:
            return
        self._g_flows.set(self.active_flows)
        self._g_state.set(self.state_bytes())

    def telemetry_snapshot(self) -> dict:
        """Refresh the gauges, then return the registry snapshot."""
        self.refresh_telemetry()
        return self.telemetry.snapshot()

    # -- packet intake ------------------------------------------------------

    def process(self, packet: TimedPacket) -> list[Alert]:
        """Normalize one packet and match signatures over new stream bytes."""
        if not self._tel_on:
            return self._process(packet)
        t0 = perf_counter_ns()
        alerts = self._process(packet)
        self._h_latency.observe(perf_counter_ns() - t0)
        self._c_packets.inc()
        if alerts:
            self._c_alerts.inc(len(alerts))
        return alerts

    def _process(self, packet: TimedPacket) -> list[Alert]:
        self.packets_processed += 1
        output = self.normalizer.process(packet)
        alerts: list[Alert] = []
        flow = output.flow
        if flow is None:
            return alerts
        for record in output.events:
            if record.event in _AMBIGUITY_EVENTS:
                alerts.append(
                    Alert(
                        kind=AlertKind.AMBIGUITY,
                        flow=flow,
                        msg=str(record),
                        stream_offset=record.offset,
                        timestamp=packet.timestamp,
                    )
                )
        if not self._matcher.empty:
            for chunk in output.chunks:
                self.bytes_normalized += len(chunk)
                if self._tel_on:
                    self._c_bytes.inc(len(chunk))
                state = self._streams.get(flow)
                if state is None:
                    state = self._matcher.new_stream_state()
                    self._streams[flow] = state
                alerts.extend(
                    self._signature_alert(hit, flow, packet.timestamp)
                    for hit in self._matcher.match_chunk(state, chunk, flow)
                )
            if (
                output.datagram is not None
                and output.datagram.protocol == IP_PROTO_UDP
            ):
                try:
                    payload = decode_udp(output.datagram).payload
                except Exception:
                    payload = b""
                if payload:
                    self.bytes_normalized += len(payload)
                    if self._tel_on:
                        self._c_bytes.inc(len(payload))
                    alerts.extend(
                        self._signature_alert(hit, flow, packet.timestamp)
                        for hit in self._matcher.match_buffer(payload, flow)
                    )
        if output.flow_closed:
            self._streams.pop(flow, None)
            self._streams.pop(flow.reversed(), None)
        return alerts

    @staticmethod
    def _signature_alert(hit, flow: FlowKey, timestamp: float) -> Alert:
        return Alert(
            kind=AlertKind.SIGNATURE,
            flow=flow,
            sid=hit.signature.sid,
            msg=hit.signature.msg,
            stream_offset=hit.end_offset,
            timestamp=timestamp,
        )

    def process_batch(self, packets: list[TimedPacket]) -> list[Alert]:
        """Batch driver for the conventional pipeline.

        Reassembly is order-dependent per flow, so this is a plain
        sequential sweep -- it exists so every engine exposes the same
        batched intake surface as :class:`SplitDetectIPS.process_batch`.
        """
        alerts: list[Alert] = []
        for packet in packets:
            alerts.extend(self.process(packet))
        return alerts

    def evict_idle(self, now: float) -> int:
        """Expire idle flows and their matcher state."""
        evicted = self.normalizer.evict_idle(now)
        if evicted:
            live = self.normalizer.live_flows()
            for key in list(self._streams):
                if key.canonical() not in live:
                    del self._streams[key]
            if self._tel_on:
                self._c_evictions.inc(evicted)
        return evicted


class NaivePacketIPS:
    """Per-packet matching with no reassembly: the evadable strawman."""

    def __init__(self, rules: RuleSet, *, telemetry=None) -> None:
        self._matcher = SignatureMatcher(sorted(rules, key=lambda s: s.sid))
        self.packets_processed = 0
        self.bytes_scanned = 0
        self.telemetry = telemetry if telemetry is not None else NULL_REGISTRY
        tel = self.telemetry
        self._tel_on = tel.enabled
        self._c_packets = tel.counter(
            "repro_naive_packets_total", "Packets scanned per-packet (no reassembly)"
        )
        self._c_bytes = tel.counter(
            "repro_naive_scanned_bytes_total", "Payload bytes scanned"
        )
        self._c_alerts = tel.counter("repro_naive_alerts_total", "Alerts raised")

    def state_bytes(self) -> int:
        """The whole point: nothing per flow."""
        return 0

    def refresh_telemetry(self) -> None:
        """No gauges to sample (the naive matcher keeps no state)."""

    def telemetry_snapshot(self) -> dict:
        return self.telemetry.snapshot()

    def process(self, packet: TimedPacket) -> list[Alert]:
        """Scan one packet's transport payload in isolation."""
        self.packets_processed += 1
        if self._tel_on:
            self._c_packets.inc()
        alerts: list[Alert] = []
        ip = packet.ip
        if ip.is_fragment or self._matcher.empty:
            return alerts
        try:
            if ip.protocol == IP_PROTO_TCP:
                payload = decode_tcp(ip).payload
            elif ip.protocol == IP_PROTO_UDP:
                payload = decode_udp(ip).payload
            else:
                return alerts
        except Exception:
            return alerts
        if not payload:
            return alerts
        flow = flow_key_of(ip)
        self.bytes_scanned += len(payload)
        for hit in self._matcher.match_buffer(payload, flow):
            alerts.append(
                Alert(
                    kind=AlertKind.SIGNATURE,
                    flow=flow,
                    sid=hit.signature.sid,
                    msg=hit.signature.msg,
                    stream_offset=hit.end_offset,
                    timestamp=packet.timestamp,
                    path="fast",
                )
            )
        if self._tel_on:
            self._c_bytes.inc(len(payload))
            if alerts:
                self._c_alerts.inc(len(alerts))
        return alerts

    def process_batch(self, packets: list[TimedPacket]) -> list[Alert]:
        """Batched per-packet matching: one automaton sweep for the whole
        batch (each payload is stateless, so the sweep is exact)."""
        scannable: list[tuple[TimedPacket, FlowKey, bytes]] = []
        for packet in packets:
            self.packets_processed += 1
            ip = packet.ip
            if ip.is_fragment or self._matcher.empty:
                continue
            try:
                if ip.protocol == IP_PROTO_TCP:
                    payload = decode_tcp(ip).payload
                elif ip.protocol == IP_PROTO_UDP:
                    payload = decode_udp(ip).payload
                else:
                    continue
            except Exception:
                continue
            if not payload:
                continue
            self.bytes_scanned += len(payload)
            scannable.append((packet, flow_key_of(ip), payload))
        alerts: list[Alert] = []
        hit_lists = self._matcher.match_buffer_many(
            [payload for _, _, payload in scannable],
            [flow for _, flow, _ in scannable],
        )
        for (packet, flow, _), hits in zip(scannable, hit_lists):
            alerts.extend(
                Alert(
                    kind=AlertKind.SIGNATURE,
                    flow=flow,
                    sid=hit.signature.sid,
                    msg=hit.signature.msg,
                    stream_offset=hit.end_offset,
                    timestamp=packet.timestamp,
                    path="fast",
                )
                for hit in hits
            )
        if self._tel_on:
            self._c_packets.inc(len(packets))
            self._c_bytes.inc(sum(len(p) for _, _, p in scannable))
            if alerts:
                self._c_alerts.inc(len(alerts))
        return alerts
