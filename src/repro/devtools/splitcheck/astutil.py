"""Shared AST plumbing for the rule implementations.

Everything here is deliberately approximate in the way linters are:
dotted-name resolution follows the file's imports but performs no type
inference, and parent/sibling maps are built per file on demand.  Rules
should prefer false negatives over false positives -- a noisy invariant
checker gets pragma'd into silence, which is worse than missing a case.
"""

from __future__ import annotations

import ast

__all__ = [
    "ImportMap",
    "build_parents",
    "dotted_name",
    "enclosing_function",
    "resolve_call_path",
    "statement_chain",
]


def build_parents(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent map for every node under ``tree``."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for pure Name/Attribute chains, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Local alias -> fully qualified name, from the file's imports.

    ``import time as t`` maps ``t`` -> ``time``; ``from time import
    perf_counter`` maps ``perf_counter`` -> ``time.perf_counter``.
    Relative imports keep their dotted tail (``from ..telemetry import
    NULL_REGISTRY`` maps to ``telemetry.NULL_REGISTRY``), which is what
    rule patterns match against.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    full = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = full
            elif isinstance(node, ast.ImportFrom):
                module = (node.module or "").lstrip(".")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    full = f"{module}.{alias.name}" if module else alias.name
                    self._aliases[local] = full

    def resolve(self, name: str) -> str:
        """Expand the leading segment of a dotted name via the imports."""
        head, _, tail = name.partition(".")
        expanded = self._aliases.get(head, head)
        return f"{expanded}.{tail}" if tail else expanded


def resolve_call_path(node: ast.Call, imports: ImportMap) -> str | None:
    """The import-resolved dotted path of a call target, when static."""
    name = dotted_name(node.func)
    return imports.resolve(name) if name is not None else None


def enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST]
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """The innermost function containing ``node`` (None at module scope)."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def statement_chain(
    node: ast.AST,
    parents: dict[ast.AST, ast.AST],
    stop: ast.AST | None = None,
) -> list[tuple[list[ast.stmt], int]]:
    """Every statement list containing ``node`` on the way up to ``stop``.

    Each entry is ``(body, index)`` where ``body[index]`` is the
    statement (at that nesting level) that contains ``node`` -- the
    inputs a rule needs to inspect *preceding siblings* (e.g. SD101's
    early-return guard detection).
    """
    chain: list[tuple[list[ast.stmt], int]] = []
    current = node
    while current is not None and current is not stop:
        parent = parents.get(current)
        if parent is None:
            break
        for field_value in ast.iter_fields(parent):
            value = field_value[1]
            if isinstance(value, list) and current in value:
                if isinstance(current, ast.stmt):
                    chain.append((value, value.index(current)))
                break
        current = parent
    return chain
