"""Unit and property tests for the RFC 1071 Internet checksum."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet import internet_checksum, pseudo_header, verify_checksum


def test_empty_buffer_checksums_to_all_ones():
    assert internet_checksum(b"") == 0xFFFF


def test_known_rfc1071_example():
    # The worked example from RFC 1071 section 3: 00 01 f2 03 f4 f5 f6 f7.
    data = bytes.fromhex("0001f203f4f5f6f7")
    # Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> fold -> 0xddf2.
    assert internet_checksum(data) == (~0xDDF2) & 0xFFFF


def test_odd_length_buffer_is_zero_padded():
    assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


def test_embedding_checksum_makes_buffer_verify():
    data = b"\x45\x00\x00\x28" + b"\x00" * 6 + b"\x00\x00" + b"\x0a" * 8
    checksum = internet_checksum(data)
    patched = data[:10] + checksum.to_bytes(2, "big") + data[12:]
    assert verify_checksum(patched)


def test_corruption_is_detected():
    data = b"\x45\x00\x00\x28" + b"\x00" * 6 + b"\x00\x00" + b"\x0a" * 8
    checksum = internet_checksum(data)
    patched = bytearray(data[:10] + checksum.to_bytes(2, "big") + data[12:])
    patched[0] ^= 0x01
    assert not verify_checksum(bytes(patched))


def test_pseudo_header_layout():
    ph = pseudo_header(b"\x0a\x00\x00\x01", b"\x0a\x00\x00\x02", 6, 40)
    assert len(ph) == 12
    assert ph[8] == 0 and ph[9] == 6
    assert int.from_bytes(ph[10:12], "big") == 40


def test_pseudo_header_rejects_short_addresses():
    with pytest.raises(ValueError):
        pseudo_header(b"\x0a", b"\x0a\x00\x00\x02", 6, 40)


@given(st.binary(max_size=256))
def test_checksum_is_16_bit(data):
    assert 0 <= internet_checksum(data) <= 0xFFFF


@given(st.binary(min_size=12, max_size=256))
def test_embedded_checksum_always_verifies(data):
    # Zero a 16-bit field, embed the checksum there, and the whole must verify.
    blank = data[:4] + b"\x00\x00" + data[6:]
    checksum = internet_checksum(blank)
    patched = blank[:4] + checksum.to_bytes(2, "big") + blank[6:]
    assert verify_checksum(patched)


@given(st.binary(max_size=128), st.binary(max_size=128))
def test_checksum_commutes_over_16bit_word_swap(a, b):
    # Ones'-complement addition is commutative, so swapping aligned halves
    # of an even-length buffer leaves the checksum unchanged.
    if len(a) % 2 or len(b) % 2:
        a = a + b"\x00" * (len(a) % 2)
        b = b + b"\x00" * (len(b) % 2)
    assert internet_checksum(a + b) == internet_checksum(b + a)
