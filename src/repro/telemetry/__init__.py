"""Runtime telemetry: metric registry, event journal, and exporters.

Quick tour::

    from repro.telemetry import TelemetryRegistry, to_json, to_prometheus

    tel = TelemetryRegistry()
    ips = SplitDetectIPS(rules, telemetry=tel)
    ips.process_batch(trace)
    ips.refresh_telemetry()          # sample gauges (occupancy, state bytes)
    print(to_prometheus(tel))        # or to_json(tel)

Every engine defaults to :data:`NULL_REGISTRY`, whose instruments are
no-op singletons -- instrumentation then costs one guarded check per
hot-path site.  See DESIGN.md's "Telemetry" section for the metric
naming scheme and how the exported series map to the paper's claims.
"""

from .export import summarize, to_json, to_prometheus, write_telemetry
from .registry import (
    GAUGE_MERGE_MODES,
    JOURNAL_CAPACITY,
    LATENCY_NS_BUCKETS,
    NULL_REGISTRY,
    SIZE_BYTES_BUCKETS,
    Counter,
    EventJournal,
    Gauge,
    Histogram,
    NullRegistry,
    TelemetryRegistry,
    merge_snapshots,
)

__all__ = [
    "Counter",
    "EventJournal",
    "GAUGE_MERGE_MODES",
    "Gauge",
    "Histogram",
    "JOURNAL_CAPACITY",
    "LATENCY_NS_BUCKETS",
    "NULL_REGISTRY",
    "NullRegistry",
    "SIZE_BYTES_BUCKETS",
    "TelemetryRegistry",
    "merge_snapshots",
    "summarize",
    "to_json",
    "to_prometheus",
    "write_telemetry",
]
