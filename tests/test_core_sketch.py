"""Unit tests for the count-min sketch and the sketch-backed flow state."""

import pickle

import pytest

from helpers import ATTACK_SIGNATURE, attack_ruleset
from repro.core import (
    FAST_FLOW_STATE_BYTES,
    CountMinSketch,
    DivertReason,
    FastPath,
    FastPathConfig,
    FlowState,
    SketchBackend,
)
from repro.core.fastpath import _flow_key_bytes
from repro.hashing import fnv1a_64, mix64
from repro.packet import FlowKey
from repro.signatures import SplitPolicy, split_ruleset


def flow_n(n: int) -> FlowKey:
    return FlowKey(f"10.{(n >> 8) & 255}.{n & 255}.1", "10.200.0.1", 1024 + (n % 40000), 80)


def make_backend(**kw) -> SketchBackend:
    kw.setdefault("slots", 1 << 10)
    kw.setdefault("hot_capacity", 8)
    kw.setdefault("width", 1 << 8)
    kw.setdefault("depth", 4)
    return SketchBackend(key_bytes=_flow_key_bytes, **kw)


class TestHashing:
    def test_fnv1a_known_vectors(self):
        # Published FNV-1a 64-bit test vectors.
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C
        assert fnv1a_64(b"foobar") == 0x85944171F73967E8

    def test_mix64_rows_decorrelate(self):
        base = fnv1a_64(b"some flow key")
        derived = {mix64(base, row) for row in range(8)}
        assert len(derived) == 8

    def test_mix64_deterministic(self):
        assert mix64(12345, 3) == mix64(12345, 3)


class TestCountMinSketch:
    def test_estimate_never_underestimates(self):
        cms = CountMinSketch(width=64, depth=4)
        truth = {}
        for n in range(200):
            h = fnv1a_64(str(n).encode())
            count = (n % 3) + 1
            cms.add(h, count)
            truth[h] = count
        for h, count in truth.items():
            assert cms.estimate(h) >= count

    def test_unseen_key_estimates_zero_when_sparse(self):
        cms = CountMinSketch(width=1 << 12, depth=4)
        cms.add(fnv1a_64(b"only key"))
        assert cms.estimate(fnv1a_64(b"never added")) == 0

    def test_merge_is_cellwise_and_sound(self):
        a = CountMinSketch(width=64, depth=4)
        b = CountMinSketch(width=64, depth=4)
        ha, hb = fnv1a_64(b"flow-a"), fnv1a_64(b"flow-b")
        a.add(ha, 3)
        b.add(hb, 5)
        b.add(ha, 2)
        a.merge(b)
        assert a.estimate(ha) >= 5
        assert a.estimate(hb) >= 5
        assert a.total() == 10

    def test_merge_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=64, depth=4).merge(CountMinSketch(width=128, depth=4))

    def test_width_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=100)

    def test_copy_is_independent(self):
        cms = CountMinSketch(width=64, depth=2)
        h = fnv1a_64(b"k")
        cms.add(h)
        clone = cms.copy()
        clone.add(h, 10)
        assert cms.estimate(h) == 1
        assert clone.estimate(h) == 11

    def test_pickle_roundtrip(self):
        cms = CountMinSketch(width=64, depth=3)
        cms.add(fnv1a_64(b"x"), 7)
        assert pickle.loads(pickle.dumps(cms)) == cms

    def test_counters_saturate(self):
        cms = CountMinSketch(width=64, depth=1)
        h = fnv1a_64(b"hot")
        cms.add(h, 0xFFFFFFFF)
        cms.add(h, 5)
        assert cms.estimate(h) == 0xFFFFFFFF


class TestSketchBackendColdPath:
    def test_cold_roundtrip_preserves_expected_seq(self):
        backend = make_backend()
        backend.put(flow_n(1), FlowState(expected_seq=123456))
        state = backend.get(flow_n(1))
        assert state is not None and state.expected_seq == 123456
        assert len(backend) == 1
        assert backend.hot_entries == 0

    def test_expected_seq_32bit_boundaries(self):
        backend = make_backend()
        backend.put(flow_n(2), FlowState(expected_seq=2**32 - 1))
        assert backend.get(flow_n(2)).expected_seq == 2**32 - 1
        backend.put(flow_n(3), FlowState(expected_seq=0))
        assert backend.get(flow_n(3)).expected_seq == 0

    def test_none_expected_seq_roundtrips(self):
        backend = make_backend()
        backend.put(flow_n(4), FlowState(expected_seq=None))
        state = backend.get(flow_n(4))
        assert state is not None and state.expected_seq is None

    def test_miss_returns_none(self):
        backend = make_backend()
        assert backend.get(flow_n(5)) is None
        assert backend.peek(flow_n(5)) is None

    def test_pop_clears_the_slot(self):
        backend = make_backend()
        backend.put(flow_n(6), FlowState(expected_seq=9))
        assert backend.pop(flow_n(6)).expected_seq == 9
        assert backend.get(flow_n(6)) is None
        assert len(backend) == 0
        sentinel = FlowState(expected_seq=42)
        assert backend.pop(flow_n(6), sentinel) is sentinel

    def test_slot_collision_recycles_never_chains(self):
        # One slot: every flow collides.  The newcomer wins the slot and
        # the victim's record is gone (midstream pickup on return), but
        # the victim's key never resolves to the newcomer's state.
        backend = make_backend(slots=1)
        backend.put(flow_n(7), FlowState(expected_seq=700))
        backend.put(flow_n(8), FlowState(expected_seq=800))
        assert backend.slot_recycles == 1
        assert backend.table_evictions == 1
        assert backend.get(flow_n(7)) is None
        assert backend.get(flow_n(8)).expected_seq == 800
        assert len(backend) == 1

    def test_provisioned_bytes_constant_under_load(self):
        backend = make_backend()
        fixed = backend.provisioned_bytes()
        for n in range(2000):
            backend.put(flow_n(n), FlowState(expected_seq=n))
        assert backend.provisioned_bytes() == fixed
        assert fixed == (
            (1 << 10) * 8
            + backend.sketch_snapshot().state_bytes()
            + 8 * FAST_FLOW_STATE_BYTES
        )


class TestSketchBackendHotSet:
    def test_anomaly_promotes_on_next_write(self):
        backend = make_backend()
        flow = flow_n(10)
        backend.record_anomaly(flow)
        backend.put(flow, FlowState(expected_seq=5000, last_seen=1.0))
        assert backend.hot_entries == 1
        assert backend.promotions == 1
        assert dict(backend.items()) == {flow: FlowState(expected_seq=5000, last_seen=1.0)}

    def test_clean_flow_stays_cold(self):
        backend = make_backend()
        backend.put(flow_n(11), FlowState(expected_seq=1))
        assert backend.hot_entries == 0
        assert backend.promotions == 0

    def test_promote_threshold_respected(self):
        backend = make_backend(promote_threshold=3)
        flow = flow_n(12)
        for _ in range(2):
            backend.record_anomaly(flow)
        backend.put(flow, FlowState())
        assert backend.hot_entries == 0
        backend.record_anomaly(flow)
        backend.put(flow, FlowState())
        assert backend.hot_entries == 1

    def test_hot_overflow_demotes_lru_to_cold(self):
        backend = make_backend(hot_capacity=2)
        flows = [flow_n(20 + n) for n in range(3)]
        for n, flow in enumerate(flows):
            backend.record_anomaly(flow)
            backend.put(flow, FlowState(expected_seq=n + 1, last_seen=float(n)))
        assert backend.hot_entries == 2
        assert backend.demotions == 1
        # The demoted (oldest) flow kept its state in a cold slot.
        assert backend.get(flows[0]).expected_seq == 1

    def test_get_refreshes_lru_order(self):
        backend = make_backend(hot_capacity=2)
        first, second, third = flow_n(30), flow_n(31), flow_n(32)
        for n, flow in enumerate((first, second)):
            backend.record_anomaly(flow)
            backend.put(flow, FlowState(expected_seq=n + 1))
        backend.get(first)  # touch: second becomes the LRU victim
        backend.record_anomaly(third)
        backend.put(third, FlowState(expected_seq=3))
        assert first in dict(backend.items())
        assert second not in dict(backend.items())

    def test_peek_does_not_refresh_lru(self):
        backend = make_backend(hot_capacity=2)
        first, second, third = flow_n(33), flow_n(34), flow_n(35)
        for n, flow in enumerate((first, second)):
            backend.record_anomaly(flow)
            backend.put(flow, FlowState(expected_seq=n + 1))
        backend.peek(first)  # passive: first stays the LRU victim
        backend.record_anomaly(third)
        backend.put(third, FlowState(expected_seq=3))
        assert first not in dict(backend.items())
        assert second in dict(backend.items())

    def test_evict_idle_demotes_but_state_survives(self):
        backend = make_backend()
        flow = flow_n(40)
        backend.record_anomaly(flow)
        backend.put(flow, FlowState(expected_seq=777, last_seen=10.0))
        assert backend.hot_entries == 1
        assert backend.evict_idle(now=1000.0, idle_timeout=300.0) == 1
        assert backend.hot_entries == 0
        assert backend.demotions == 1
        # Demoted, not dropped: the expected sequence number survives.
        assert backend.get(flow).expected_seq == 777

    def test_evict_idle_keeps_fresh_entries(self):
        backend = make_backend()
        flow = flow_n(41)
        backend.record_anomaly(flow)
        backend.put(flow, FlowState(expected_seq=1, last_seen=990.0))
        assert backend.evict_idle(now=1000.0, idle_timeout=300.0) == 0
        assert backend.hot_entries == 1

    def test_clear_flushes_entries_but_keeps_anomaly_history(self):
        backend = make_backend()
        flow = flow_n(42)
        backend.record_anomaly(flow)
        backend.put(flow, FlowState(expected_seq=1))
        backend.clear()
        assert len(backend) == 0
        # The sketch is history, not a monitor entry: the flow still
        # promotes on its next write.
        backend.put(flow, FlowState(expected_seq=2))
        assert backend.hot_entries == 1

    def test_sketch_snapshot_is_a_copy(self):
        backend = make_backend()
        flow = flow_n(43)
        backend.record_anomaly(flow)
        snapshot = backend.sketch_snapshot()
        h = fnv1a_64(_flow_key_bytes(flow))
        assert snapshot.estimate(h) == 1
        snapshot.add(h, 100)
        assert backend.sketch_snapshot().estimate(h) == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make_backend(slots=100)  # not a power of two
        with pytest.raises(ValueError):
            make_backend(hot_capacity=0)
        with pytest.raises(ValueError):
            make_backend(promote_threshold=0)


def _sketch_config(**kw):
    kw.setdefault("state_backend", "sketch")
    kw.setdefault("sketch_slots", 1 << 12)
    kw.setdefault("sketch_hot_capacity", 256)
    kw.setdefault("sketch_width", 1 << 10)
    return FastPathConfig(**kw)


def _fastpath(config=None):
    rules = attack_ruleset()
    split = split_ruleset(rules, SplitPolicy(piece_length=8))
    return FastPath(split, config)


class TestFastPathSketchBackend:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            _fastpath(FastPathConfig(state_backend="bloom"))

    def test_state_bytes_is_provisioned_and_flat(self):
        from repro.evasion import even_segments, plan_to_packets

        fp = _fastpath(_sketch_config())
        fixed = fp.state_bytes()
        for n in range(50):
            packets = plan_to_packets(
                even_segments(b"just plain benign traffic " * 30, 600),
                src_port=10000 + n,
            )
            for packet in packets:
                fp.process(packet)
        assert fp.state_bytes() == fixed

    def test_matches_dict_backend_on_mixed_traffic(self):
        """The sketch backend must reach the exact backend's verdicts on
        collision-free traffic: same diverts, same alerts, packet by
        packet."""
        from repro.evasion import even_segments, plan_to_packets

        def trace():
            packets = []
            for n in range(40):
                if n % 4 == 0:
                    payload = b"A" * 100 + ATTACK_SIGNATURE + b"B" * 500
                else:
                    payload = b"nothing to see here, move along " * 20
                packets.extend(
                    plan_to_packets(
                        even_segments(payload, 600), src_port=20000 + n
                    )
                )
            return packets

        exact = _fastpath()
        sketch = _fastpath(_sketch_config())
        for exact_packet, sketch_packet in zip(trace(), trace()):
            a = exact.process(exact_packet)
            b = sketch.process(sketch_packet)
            assert a.divert == b.divert
            assert [alert.sid for alert in a.alerts] == [
                alert.sid for alert in b.alerts
            ]

    def test_diverting_flow_promotes_to_hot_set(self):
        from repro.evasion import even_segments, plan_to_packets

        fp = _fastpath(_sketch_config())
        payload = b"A" * 100 + ATTACK_SIGNATURE + b"B" * 500
        packets = plan_to_packets(even_segments(payload, 600))
        diverted = False
        for packet in packets:
            result = fp.process(packet)
            diverted = diverted or result.divert is not None
        assert diverted
        assert fp._flows.promotions >= 1

    def test_seed_flow_lands_hot_after_anomaly(self):
        fp = _fastpath(_sketch_config())
        flow = FlowKey("10.9.9.9", "10.0.0.2", 44000, 80)
        fp._flows.record_anomaly(flow)  # the diversion that probationed it
        fp.seed_flow(flow, 5000, now=100.0)
        assert fp._flows.hot_entries == 1
        assert fp.expected_seq(flow) == 5000
