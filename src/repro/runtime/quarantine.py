"""Malformed-input quarantine: bad frames are counted, never fatal.

The PYROLYSE lesson (see PAPERS.md) is that real NIDS stacks die or
desynchronize on hostile input -- which turns the inspector itself into
an evasion vector.  This module is the runtime's answer at the *decode*
boundary: the runners accept undecoded records alongside parsed packets,
and a frame that fails IPv4 parsing is diverted into a
:class:`Quarantine` ledger (per-cause counts plus a few exemplars)
instead of raising out of the feed loop.

Two quarantine sites exist, same ledger shape at both:

- **feeder-side** (this module's :func:`decode_packets`): raw pcap
  records that never become a :class:`~repro.packet.TimedPacket`;
- **shard-side** (:meth:`~repro.runtime.worker.ShardProcessor.feed`):
  a :class:`~repro.packet.errors.PacketError` escaping the engine for a
  batch that decoded but blew up deeper in the pipeline.

Both feed the merged report's ``quarantined`` map and the
``repro_runtime_quarantined_packets_total`` counter, so a run under
malformed traffic is *visibly* degraded, never silently wrong.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator

from ..packet import IPv4Packet, TimedPacket
from ..packet.errors import PacketError
from .control import ControlMessage

__all__ = ["DECODE_ERRORS", "PacketSource", "Quarantine", "decode_packets"]

#: Exception types the decode boundary converts into quarantine entries.
#: Anything else is a genuine bug and must escape loudly.
DECODE_ERRORS: tuple[type[BaseException], ...] = (
    PacketError,
    ValueError,
    struct.error,
)

#: What the runners accept: parsed packets, (timestamp, bytes) records,
#: bare frame bytes (timestamped 0.0), or interleaved
#: :class:`~repro.runtime.control.ControlMessage` commands.
PacketSource = Iterable["TimedPacket | tuple[float, bytes] | bytes | ControlMessage"]


class Quarantine:
    """Per-cause ledger of frames dropped at a decode boundary."""

    #: Exemplars retained per cause (enough to debug, bounded by design).
    MAX_EXAMPLES = 3

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.examples: dict[str, list[str]] = {}

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def add(self, exc: BaseException, packets: int = 1) -> None:
        """Record *packets* frames dropped because of *exc*."""
        cause = type(exc).__name__
        self.counts[cause] = self.counts.get(cause, 0) + packets
        examples = self.examples.setdefault(cause, [])
        if len(examples) < self.MAX_EXAMPLES:
            examples.append(str(exc))

    def merge_into(self, counts: dict[str, int]) -> None:
        """Fold this ledger's counts into an accumulating cause map."""
        for cause in sorted(self.counts):
            counts[cause] = counts.get(cause, 0) + self.counts[cause]


def decode_packets(
    items: PacketSource, quarantine: Quarantine
) -> "Iterator[TimedPacket | ControlMessage]":
    """Yield parsed packets; malformed frames go to *quarantine*.

    Already-parsed :class:`TimedPacket` items pass through untouched, so
    existing callers pay nothing; raw ``(timestamp, bytes)`` records (or
    bare ``bytes``) are parsed here, and a frame the IPv4 layer rejects
    is counted by exception class and dropped -- the pipeline keeps
    running.  :class:`ControlMessage` items pass through at their stream
    position (the runners broadcast them to every shard).
    """
    for item in items:
        if isinstance(item, TimedPacket):
            yield item
            continue
        if isinstance(item, ControlMessage):
            yield item
            continue
        if isinstance(item, tuple):
            timestamp, data = item
        else:
            timestamp, data = 0.0, item
        try:
            yield TimedPacket(float(timestamp), IPv4Packet.parse(bytes(data)))
        except DECODE_ERRORS as exc:
            quarantine.add(exc)
