#!/usr/bin/env python3
"""Quickstart: detect a FragRoute-style evasion without reassembly.

Builds a one-signature ruleset, crafts the classic 8-byte-segment evasion
(the attack Ptacek-Newsham showed defeats per-packet matching), and runs
it through the Split-Detect IPS.  Watch the fast path divert the flow on
its first tiny segment and the slow path confirm the signature.

Run:  python examples/quickstart.py
"""

from repro.core import NaivePacketIPS, SplitDetectIPS
from repro.evasion import build_attack
from repro.signatures import RuleSet, Signature, SplitPolicy
from repro.telemetry import TelemetryRegistry, summarize

# 1. A signature, as a Snort-style exact content string.
rules = RuleSet()
rules.add(
    Signature(
        sid=2001,
        pattern=b"\x90\x90\x90\x90/bin/sh -c 'chmod 4755'",
        msg="shellcode with setuid chmod",
        dst_port=80,
    )
)

# 2. The attack: payload carrying the signature, delivered in 8-byte TCP
#    segments so no single packet ever contains the whole string.
payload = b"POST /upload HTTP/1.1\r\n\r\n" + rules.signatures[0].pattern + b"\r\n"
attack = build_attack("tcp_seg_8", payload)

# 3. A strawman IPS that matches per packet is blind to this:
naive = NaivePacketIPS(rules)
naive_alerts = naive.process_batch(attack)
print(f"naive per-packet IPS alerts: {len(naive_alerts)}   <- evaded!")

# 4. Split-Detect: signatures are split into pieces; flows sending
#    suspiciously small segments are diverted and reassembled.  Packets
#    go in as one batch: the fast path scans every payload in a single
#    compiled-automaton sweep before per-packet routing.  A telemetry
#    registry (optional -- the default is a no-op) records what each
#    stage did.
telemetry = TelemetryRegistry()
ips = SplitDetectIPS(
    rules, split_policy=SplitPolicy(piece_length=8), telemetry=telemetry
)
alerts = ips.process_batch(attack)

print(f"split-detect alerts: {len(alerts)}")
for alert in alerts:
    print(f"  {alert}")
print("diversions:")
for diversion in ips.diversions:
    print(f"  {diversion.flow}  reason={diversion.reason.value} ({diversion.detail})")
print(
    f"fast path scanned {ips.stats.fast_bytes_scanned} bytes, "
    f"slow path normalized {ips.stats.slow_bytes_normalized} bytes"
)

# 5. The same story, straight from the telemetry registry (this is what
#    `splitdetect run --telemetry-out stats.json` exports).
ips.refresh_telemetry()
print("\ntelemetry summary (engine + fast path):")
for line in summarize(telemetry, prefix="repro_engine_"):
    print(f"  {line}")
for line in summarize(telemetry, prefix="repro_fastpath_anomaly"):
    print(f"  {line}")
assert alerts, "Split-Detect must catch this"
