"""Unit tests for the shared SignatureMatcher (multi-content completion)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import SignatureMatcher
from repro.packet import FlowKey
from repro.signatures import Signature

FLOW = FlowKey("1.1.1.1", "2.2.2.2", 1000, 80)


def matcher(*sigs):
    return SignatureMatcher(list(sigs))


class TestBufferMatching:
    def test_single_content(self):
        m = matcher(Signature(sid=1, pattern=b"needle"))
        hits = m.match_buffer(b"hay needle hay", FLOW)
        assert [h.signature.sid for h in hits] == [1]

    def test_multi_content_all_present(self):
        m = matcher(Signature(sid=1, pattern=b"primary!", extra_contents=(b"aa", b"bb")))
        assert m.match_buffer(b"aa..primary!..bb", FLOW)
        assert m.match_buffer(b"primary!aabb", FLOW)

    def test_multi_content_missing_extra(self):
        m = matcher(Signature(sid=1, pattern=b"primary!", extra_contents=(b"aa", b"bb")))
        assert not m.match_buffer(b"aa..primary!..", FLOW)
        assert not m.match_buffer(b"..primary!..", FLOW)

    def test_port_and_protocol_filters(self):
        m = matcher(Signature(sid=1, pattern=b"needle", dst_port=443))
        assert not m.match_buffer(b"needle", FLOW)
        https = FlowKey("1.1.1.1", "2.2.2.2", 1000, 443)
        assert m.match_buffer(b"needle", https)

    def test_empty_matcher(self):
        m = SignatureMatcher([])
        assert m.empty
        assert m.match_buffer(b"anything", FLOW) == []

    def test_repeated_primary_alerts_each_time(self):
        m = matcher(Signature(sid=1, pattern=b"dup"))
        assert len(m.match_buffer(b"dup dup dup", FLOW)) == 3


class TestStreamMatching:
    def test_completion_across_chunks(self):
        m = matcher(Signature(sid=1, pattern=b"primary!", extra_contents=(b"xtra1",)))
        state = m.new_stream_state()
        assert m.match_chunk(state, b"...prim", FLOW) == []
        assert m.match_chunk(state, b"ary!...", FLOW) == []  # extra still missing
        hits = m.match_chunk(state, b"..xtra1..", FLOW)
        assert [h.signature.sid for h in hits] == [1]

    def test_extras_first_then_primary(self):
        m = matcher(Signature(sid=1, pattern=b"primary!", extra_contents=(b"xtra1",)))
        state = m.new_stream_state()
        m.match_chunk(state, b"xtra1....", FLOW)
        hits = m.match_chunk(state, b"primary!", FLOW)
        assert len(hits) == 1

    def test_two_pending_primaries_both_fire_on_completion(self):
        m = matcher(Signature(sid=1, pattern=b"primary!", extra_contents=(b"xtra1",)))
        state = m.new_stream_state()
        m.match_chunk(state, b"primary!..primary!..", FLOW)
        hits = m.match_chunk(state, b"xtra1", FLOW)
        assert len(hits) == 2

    def test_per_flow_state_is_independent(self):
        m = matcher(Signature(sid=1, pattern=b"primary!", extra_contents=(b"xtra1",)))
        a, b = m.new_stream_state(), m.new_stream_state()
        m.match_chunk(a, b"xtra1", FLOW)
        assert m.match_chunk(b, b"primary!", FLOW) == []  # b never saw the extra
        assert m.match_chunk(a, b"primary!", FLOW)

    def test_nocase_signature_in_stream(self):
        m = matcher(Signature(sid=1, pattern=b"Needle", nocase=True))
        state = m.new_stream_state()
        hits = m.match_chunk(state, b"...nEeDlE...", FLOW)
        assert len(hits) == 1

    def test_open_prefix_len_tracks_tail(self):
        m = matcher(Signature(sid=1, pattern=b"abcdef"))
        state = m.new_stream_state()
        m.match_chunk(state, b"...abc", FLOW)
        assert state.open_prefix_len == 3


@given(
    data=st.binary(max_size=300),
    chunk_size=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=60)
def test_stream_and_buffer_agree_for_single_content(data, chunk_size):
    sig = Signature(sid=1, pattern=b"\x01\x02\x03")
    m_buffer = matcher(sig)
    m_stream = matcher(sig)
    buffer_hits = len(m_buffer.match_buffer(data, FLOW))
    state = m_stream.new_stream_state()
    stream_hits = 0
    for i in range(0, len(data), chunk_size):
        stream_hits += len(m_stream.match_chunk(state, data[i : i + chunk_size], FLOW))
    assert stream_hits == buffer_hits
