"""Packet ingestion sources for ``splitdetect serve``.

The batch CLI reads a finished pcap; a long-lived service ingests from
something that is still *producing*.  Three sources, one duck-typed
contract:

- ``poll(max_records, timeout)`` -> up to ``max_records`` undecoded
  ``(timestamp, ip_bytes)`` records, waiting at most ``timeout`` seconds
  for the first one (an empty list means "nothing arrived yet", never
  "end of stream");
- ``exhausted`` -> True once the source can never produce again (only
  the replay source ever finishes on its own);
- ``state()`` -> a JSON-safe dict for ``/healthz`` (kind, progress
  counters, backlog);
- ``close()`` -> release sockets/files; idempotent.

Sources hand the service *undecoded* records on purpose: the runtime's
decode quarantine (PR 5) owns malformed frames, so a hostile producer
cannot crash the service any more than a hostile capture can crash
``run``.

Socket framing (``SocketSource``): a connection opens with the 4-byte
magic ``SDS1``, then carries length-prefixed records -- ``!dI`` (float64
packet timestamp, uint32 payload length) followed by that many bytes of
raw IPv4.  Oversized or malformed frames terminate that connection (and
are counted); other connections and the service are unaffected.  Every
blocking socket/queue call in this module carries an explicit timeout --
enforced statically by splitcheck rule SD108 -- so no producer can wedge
the ingest loop.
"""

from __future__ import annotations

import os
import queue as queue_mod
import socket
import struct
import threading
import time
from collections.abc import Iterable, Iterator
from itertools import islice
from typing import Any

from ..packet import ETHERTYPE_IPV4, EthernetFrame
from ..pcap.format import (
    GLOBAL_HEADER_SIZE,
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    RECORD_HEADER_SIZE,
    PcapFormatError,
    decode_global_header,
    decode_record_header,
)

__all__ = [
    "FRAME_MAGIC",
    "MAX_FRAME_BYTES",
    "PcapTailSource",
    "ReplaySource",
    "SocketSource",
    "encode_record",
    "open_source",
    "send_records",
]

#: Stream preamble a socket producer must send before its first record.
FRAME_MAGIC = b"SDS1"

#: Per-record header: float64 packet timestamp + uint32 payload length.
_RECORD_HEADER = struct.Struct("!dI")

#: Hard bound on one framed record's payload; larger claims are treated
#: as protocol corruption (no IPv4 datagram is this big).
MAX_FRAME_BYTES = 1 << 20

#: Listener/connection socket timeout: the granularity at which reader
#: threads notice a shutdown request.
_SOCKET_POLL_SECONDS = 0.2


def encode_record(timestamp: float, data: bytes) -> bytes:
    """One framed record as the socket protocol puts it on the wire."""
    return _RECORD_HEADER.pack(timestamp, len(data)) + data


def send_records(
    sock: socket.socket, records: Iterable[tuple[float, bytes]]
) -> int:
    """Producer helper: magic preamble + every record, returns the count.

    Used by tests and the soak benchmark; a real producer only needs to
    replicate the framing (see the module docstring).
    """
    sock.sendall(FRAME_MAGIC)
    count = 0
    for timestamp, data in records:
        sock.sendall(encode_record(timestamp, data))
        count += 1
    return count


class ReplaySource:
    """An in-process iterable of records, served at poll granularity.

    The equivalence bridge between ``serve`` and ``run``: replaying a
    pcap's records through the service must alert identically to the
    batch CLI on the same file (modulo shedding, which is off below
    overload).  Also the deterministic source for tests.
    """

    def __init__(
        self, records: Iterable[tuple[float, bytes]], *, label: str = "replay"
    ) -> None:
        self._iterator: Iterator[tuple[float, bytes]] = iter(records)
        self._exhausted = False
        self.label = label
        self.records_out = 0

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def poll(
        self, max_records: int, timeout: float
    ) -> list[tuple[float, bytes]]:
        del timeout  # everything is already in memory; never waits
        batch = list(islice(self._iterator, max_records))
        if len(batch) < max_records:
            self._exhausted = True
        self.records_out += len(batch)
        return batch

    def state(self) -> dict[str, Any]:
        return {
            "kind": "replay",
            "label": self.label,
            "records": self.records_out,
            "exhausted": self._exhausted,
            "backlog_fraction": 0.0,
        }

    def close(self) -> None:
        self._exhausted = True


class PcapTailSource:
    """Follow a growing pcap file, yielding records as they are appended.

    ``tail -f`` for savefiles: reads whatever complete records exist,
    remembers the offset, and re-polls for more -- a record whose bytes
    are only partially flushed by the capturing process is left in the
    file until its remainder arrives (never yielded truncated).  The
    global header is awaited the same way, so tailing a file the capture
    tool has created-but-not-written-yet just waits.  Ethernet link
    types are unwrapped to raw IP exactly like ``read_records``; a
    non-IPv4 ethertype is skipped.  Never ``exhausted``: end of file
    only means "no more *yet*".
    """

    def __init__(self, path: str | os.PathLike, *, poll_interval: float = 0.05) -> None:
        self.path = os.fspath(path)
        self.poll_interval = poll_interval
        self._handle: Any = None
        self._header: Any = None
        self._buffer = bytearray()
        self._closed = False
        self.records_out = 0
        self.bytes_read = 0
        self.skipped_frames = 0

    @property
    def exhausted(self) -> bool:
        return self._closed

    def _fill(self) -> None:
        if self._handle is None:
            try:
                self._handle = open(self.path, "rb")
            except FileNotFoundError:
                return  # capture tool has not created the file yet
        chunk = self._handle.read(1 << 20)
        if chunk:
            self._buffer.extend(chunk)
            self.bytes_read += len(chunk)

    def _take_records(self, max_records: int) -> list[tuple[float, bytes]]:
        buffer = self._buffer
        if self._header is None:
            if len(buffer) < GLOBAL_HEADER_SIZE:
                return []
            self._header = decode_global_header(bytes(buffer[:GLOBAL_HEADER_SIZE]))
            if self._header.linktype not in (LINKTYPE_RAW_IP, LINKTYPE_ETHERNET):
                raise PcapFormatError(
                    f"unsupported linktype {self._header.linktype} in {self.path}"
                )
            del buffer[:GLOBAL_HEADER_SIZE]
        header = self._header
        ethernet = header.linktype == LINKTYPE_ETHERNET
        records: list[tuple[float, bytes]] = []
        while len(records) < max_records and len(buffer) >= RECORD_HEADER_SIZE:
            timestamp, captured, _original = decode_record_header(
                bytes(buffer[:RECORD_HEADER_SIZE]),
                header.byte_order,
                nanosecond=header.nanosecond,
            )
            if len(buffer) < RECORD_HEADER_SIZE + captured:
                break  # body still being written; re-poll later
            data = bytes(
                buffer[RECORD_HEADER_SIZE : RECORD_HEADER_SIZE + captured]
            )
            del buffer[: RECORD_HEADER_SIZE + captured]
            if ethernet:
                try:
                    frame = EthernetFrame.parse(data)
                except Exception:
                    records.append((timestamp, data))  # quarantine decides
                    continue
                if frame.ethertype != ETHERTYPE_IPV4:
                    self.skipped_frames += 1
                    continue
                data = frame.payload
            records.append((timestamp, data))
        return records

    def poll(
        self, max_records: int, timeout: float
    ) -> list[tuple[float, bytes]]:
        deadline = time.monotonic() + timeout
        while True:
            self._fill()
            records = self._take_records(max_records)
            if records or time.monotonic() >= deadline or self._closed:
                self.records_out += len(records)
                return records
            time.sleep(self.poll_interval)

    def state(self) -> dict[str, Any]:
        return {
            "kind": "tail",
            "path": self.path,
            "records": self.records_out,
            "bytes_read": self.bytes_read,
            "pending_bytes": len(self._buffer),
            "header_seen": self._header is not None,
            "backlog_fraction": 0.0,
        }

    def close(self) -> None:
        self._closed = True
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class SocketSource:
    """A framed-record listener on a TCP or Unix-domain socket.

    Accepts any number of producer connections; each is read by its own
    daemon thread into one bounded hand-off queue the service drains
    with :meth:`poll`.  The queue bound is the service's explicit
    ingest buffer: when producers outrun the pipeline the queue fills,
    ``backlog_fraction`` rises (driving the load shedder), and records
    that arrive with the buffer full are *dropped and counted* as
    ``overflow_dropped`` -- the loss accounting's ``lost`` term, never a
    silent gap.

    A connection that violates the protocol (bad magic, oversized frame,
    truncated header) is closed and counted; the listener keeps serving
    everyone else.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        family: int = socket.AF_INET,
        capacity: int = 4096,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.max_frame = max_frame
        self._queue: queue_mod.Queue = queue_mod.Queue(maxsize=capacity)
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self.connections_total = 0
        self.connections_active = 0
        self.records_in = 0
        self.records_out = 0
        self.overflow_dropped = 0
        self.protocol_errors = 0

        self._listener = socket.socket(family, socket.SOCK_STREAM)
        if family == socket.AF_INET:
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.settimeout(_SOCKET_POLL_SECONDS)
        self._listener.bind(address)
        self._listener.listen()
        self.address = self._listener.getsockname()
        accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        accept_thread.start()
        self._threads.append(accept_thread)

    @property
    def exhausted(self) -> bool:
        # A listener never finishes on its own; the service stops it.
        return self._stop.is_set() and self._queue.empty()

    # -- reader side (daemon threads) ---------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed underneath us during shutdown
            with self._lock:
                self.connections_total += 1
                self.connections_active += 1
            thread = threading.Thread(
                target=self._read_loop,
                args=(conn,),
                name=f"serve-conn-{self.connections_total}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _read_exact(self, conn: socket.socket, size: int) -> bytes | None:
        """Read exactly *size* bytes; None on EOF/shutdown mid-read."""
        chunks = bytearray()
        while len(chunks) < size:
            if self._stop.is_set():
                return None
            try:
                chunk = conn.recv(size - len(chunks))
            except TimeoutError:
                continue
            except OSError:
                return None
            if not chunk:
                return None
            chunks.extend(chunk)
        return bytes(chunks)

    def _read_loop(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(_SOCKET_POLL_SECONDS)
            magic = self._read_exact(conn, len(FRAME_MAGIC))
            if magic is None:
                return
            if magic != FRAME_MAGIC:
                with self._lock:
                    self.protocol_errors += 1
                return
            while not self._stop.is_set():
                header = self._read_exact(conn, _RECORD_HEADER.size)
                if header is None:
                    return  # clean EOF between records
                timestamp, length = _RECORD_HEADER.unpack(header)
                if length > self.max_frame:
                    with self._lock:
                        self.protocol_errors += 1
                    return
                data = self._read_exact(conn, length)
                if data is None:
                    with self._lock:
                        self.protocol_errors += 1  # EOF mid-record
                    return
                with self._lock:
                    self.records_in += 1
                try:
                    self._queue.put_nowait((timestamp, data))
                except queue_mod.Full:
                    # The explicit overflow path: the buffer bound is
                    # the backstop behind load shedding, and a drop here
                    # is the report's ``lost`` term.
                    with self._lock:
                        self.overflow_dropped += 1
        finally:
            conn.close()
            with self._lock:
                self.connections_active -= 1

    # -- service side --------------------------------------------------

    def poll(
        self, max_records: int, timeout: float
    ) -> list[tuple[float, bytes]]:
        records: list[tuple[float, bytes]] = []
        try:
            records.append(self._queue.get(timeout=timeout))
        except queue_mod.Empty:
            return records
        while len(records) < max_records:
            try:
                records.append(self._queue.get_nowait())
            except queue_mod.Empty:
                break
        self.records_out += len(records)
        return records

    def state(self) -> dict[str, Any]:
        with self._lock:
            return {
                "kind": "socket",
                "address": (
                    list(self.address)
                    if isinstance(self.address, tuple)
                    else self.address
                ),
                "connections_total": self.connections_total,
                "connections_active": self.connections_active,
                "records_in": self.records_in,
                "records_out": self.records_out,
                "overflow_dropped": self.overflow_dropped,
                "protocol_errors": self.protocol_errors,
                "backlog_fraction": self._queue.qsize() / self.capacity,
            }

    def close(self) -> None:
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        for thread in self._threads:
            thread.join(timeout=2.0)


def open_source(
    spec: str, *, capacity: int = 4096
) -> ReplaySource | PcapTailSource | SocketSource:
    """Build a source from a CLI spec string.

    - ``replay:PATH`` -- read PATH's records once, then finish;
    - ``tail:PATH``   -- follow PATH as it grows;
    - ``tcp:HOST:PORT`` -- listen for framed-record producers (port 0
      picks a free port; ``/healthz`` reports the bound address);
    - ``unix:PATH``   -- the same protocol on a Unix-domain socket.
    """
    kind, _, rest = spec.partition(":")
    if not rest:
        raise ValueError(
            f"bad source spec {spec!r}: expected replay:PATH, tail:PATH, "
            "tcp:HOST:PORT, or unix:PATH"
        )
    if kind == "replay":
        from ..pcap import read_records

        return ReplaySource(read_records(rest), label=rest)
    if kind == "tail":
        return PcapTailSource(rest)
    if kind == "tcp":
        host, _, port_text = rest.rpartition(":")
        if not host:
            raise ValueError(f"bad source spec {spec!r}: expected tcp:HOST:PORT")
        try:
            port = int(port_text)
        except ValueError as exc:
            raise ValueError(
                f"bad source spec {spec!r}: port {port_text!r} is not an integer"
            ) from exc
        return SocketSource((host, port), capacity=capacity)
    if kind == "unix":
        if not hasattr(socket, "AF_UNIX"):
            raise ValueError("unix sockets are not available on this platform")
        return SocketSource(rest, family=socket.AF_UNIX, capacity=capacity)
    raise ValueError(
        f"unknown source kind {kind!r}: expected replay, tail, tcp, or unix"
    )
