"""Signature splitting -- the prerequisite of Split-Detect.

Splitting turns an exact-string signature of length ``L`` into
``k = floor(L / p)`` contiguous pieces, each between ``p`` and ``2p - 1``
bytes.  Together with the fast path's rule "divert any flow whose
non-final data packet carries fewer than ``B = 2p`` payload bytes", the
pigeonhole argument of ``repro.theory`` guarantees that an undiverted,
in-order, non-overlapping flow delivering the signature must place at
least one piece wholly inside one packet, where a per-packet matcher sees
it.  ``k >= 3`` is required: with two pieces a pair of boundaries can cut
both (see the theorem's tightness test).

When a :class:`ByteFrequencyModel` is supplied, internal split points are
nudged (within the slack the length constraints allow) so that the most
common piece is as rare as possible, reducing benign fast-path hits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import Piece, RuleSet, Signature, SplitSignature
from .ngram import ByteFrequencyModel

#: Pieces shorter than this are too likely to occur in benign traffic to
#: be useful no matter what the model says.
ABSOLUTE_MIN_PIECE = 4


class UnsplittableSignatureError(ValueError):
    """Raised when a signature is too short for a sound split."""

    def __init__(self, signature: Signature, minimum: int) -> None:
        super().__init__(
            f"sid {signature.sid}: pattern of {len(signature)} bytes cannot "
            f"be split into 3 pieces of >= {minimum} bytes"
        )
        self.signature = signature


@dataclass(frozen=True)
class SplitPolicy:
    """Knobs governing how signatures are split.

    ``piece_length`` is the paper's ``p``: the nominal piece size and
    half the small-packet threshold.  Signatures shorter than
    ``3 * piece_length`` fall back to ``p' = L // 3`` provided that stays
    at or above ``min_piece_length``.
    """

    piece_length: int = 8
    min_piece_length: int = ABSOLUTE_MIN_PIECE
    optimize_boundaries: bool = True

    skip_common_prefix: bool = False
    """With a background model, allow piece coverage to begin past a
    benign-looking pattern prefix ("GET /", "MAIL FROM", ...).  The
    theorem's counting argument runs over the covered span, so skipping
    is sound as long as at least three pieces of ``piece_length`` remain
    (the splitter re-verifies with ``find_evading_boundaries``-style
    counting at construction via ``SplitSignature`` validation)."""

    prefix_skip_limit: int = 16
    """Most prefix bytes the splitter may skip."""

    def __post_init__(self) -> None:
        if self.piece_length < self.min_piece_length:
            raise ValueError("piece_length below min_piece_length")
        if self.min_piece_length < ABSOLUTE_MIN_PIECE:
            raise ValueError(f"min_piece_length below {ABSOLUTE_MIN_PIECE}")


def effective_piece_length(signature: Signature, policy: SplitPolicy) -> int:
    """The ``p`` actually used for this signature under ``policy``."""
    length = len(signature)
    if length >= 3 * policy.piece_length:
        return policy.piece_length
    fallback = length // 3
    if fallback >= policy.min_piece_length:
        return fallback
    raise UnsplittableSignatureError(signature, policy.min_piece_length)


def split_signature(
    signature: Signature,
    policy: SplitPolicy | None = None,
    model: ByteFrequencyModel | None = None,
) -> SplitSignature:
    """Split one signature into pieces satisfying the detection theorem."""
    policy = policy or SplitPolicy()
    p = effective_piece_length(signature, policy)
    pattern = signature.pattern
    length = len(pattern)
    start = 0
    if model is not None and policy.skip_common_prefix:
        start = _choose_start(pattern, p, policy, model)
    boundaries = _even_boundaries(length, p, start)
    if model is not None and policy.optimize_boundaries and len(boundaries) >= 3:
        boundaries = _optimize(pattern, boundaries, p, model)
    pieces = tuple(
        Piece(
            signature=signature,
            index=i,
            offset=boundaries[i],
            data=pattern[boundaries[i] : boundaries[i + 1]],
        )
        for i in range(len(boundaries) - 1)
    )
    return SplitSignature(signature=signature, pieces=pieces, piece_length=p)


def _even_boundaries(length: int, p: int, start: int) -> list[int]:
    """k = floor((length-start)/p) piece boundaries covering [start, length)."""
    covered = length - start
    k = covered // p
    base = covered // k
    remainder = covered % k
    boundaries = [start]
    for i in range(k):
        boundaries.append(boundaries[-1] + base + (1 if i < remainder else 0))
    return boundaries


def _choose_start(
    pattern: bytes, p: int, policy: SplitPolicy, model: ByteFrequencyModel
) -> int:
    """Pick the coverage start offset minimizing the most common piece."""
    max_skip = min(policy.prefix_skip_limit, len(pattern) - 3 * p)
    if max_skip <= 0:
        return 0
    best_start = 0
    best_score = None
    for start in range(max_skip + 1):
        bounds = _even_boundaries(len(pattern), p, start)
        score = max(
            model.log_probability(pattern[bounds[i] : bounds[i + 1]])
            for i in range(len(bounds) - 1)
        )
        if best_score is None or score < best_score - 1e-12:
            best_start, best_score = start, score
    return best_start


def _optimize(
    pattern: bytes, boundaries: list[int], p: int, model: ByteFrequencyModel
) -> list[int]:
    """Coordinate-descent on internal boundaries to minimize the most
    common (highest log-probability) piece."""

    def score(bounds: list[int]) -> float:
        return max(
            model.log_probability(pattern[bounds[i] : bounds[i + 1]])
            for i in range(len(bounds) - 1)
        )

    best = list(boundaries)
    best_score = score(best)
    improved = True
    while improved:
        improved = False
        for i in range(1, len(best) - 1):
            lo = best[i - 1] + p
            hi = best[i + 1] - p
            for candidate in range(lo, hi + 1):
                if candidate == best[i]:
                    continue
                trial = best[:i] + [candidate] + best[i + 1 :]
                # Lengths must stay below 2p - 1?  No: only >= p is required
                # for soundness; the upper bound comes from k = floor(L/p),
                # which fixing the boundary count already guarantees on
                # average.  Still, cap at 3p to keep pieces scan-friendly.
                if any(
                    trial[j + 1] - trial[j] > 3 * p for j in (i - 1, i)
                ):
                    continue
                trial_score = score(trial)
                if trial_score < best_score - 1e-12:
                    best, best_score = trial, trial_score
                    improved = True
    return best


@dataclass
class SplitRuleSet:
    """Every signature of a rule set, split and indexed for the fast path."""

    policy: SplitPolicy
    splits: dict[int, SplitSignature]
    unsplittable: list[Signature]
    udp_whole: list[Signature] = None  # type: ignore[assignment]
    """UDP signatures, matched whole per datagram: UDP has no stream, so
    splitting buys nothing -- the only evasion channel is fragmentation,
    which diverts the datagram to the slow path for defragmentation."""

    def __post_init__(self) -> None:
        if self.udp_whole is None:
            self.udp_whole = []

    @property
    def small_packet_threshold(self) -> int:
        """The global ``B``: twice the largest per-signature piece length."""
        if not self.splits:
            return 2 * self.policy.piece_length
        return 2 * max(split.piece_length for split in self.splits.values())

    def all_pieces(self) -> list[Piece]:
        """Every piece of every split, in deterministic order."""
        out: list[Piece] = []
        for sid in sorted(self.splits):
            out.extend(self.splits[sid].pieces)
        return out

    @property
    def piece_count(self) -> int:
        return sum(split.k for split in self.splits.values())


def split_ruleset(
    rules: RuleSet,
    policy: SplitPolicy | None = None,
    model: ByteFrequencyModel | None = None,
) -> SplitRuleSet:
    """Split every signature in ``rules``; too-short ones are set aside.

    Unsplittable signatures are returned separately so the caller can
    decide their fate (the Split-Detect engine can scan them whole on the
    fast path as a best-effort, or pin their ports to the slow path).
    """
    policy = policy or SplitPolicy()
    splits: dict[int, SplitSignature] = {}
    unsplittable: list[Signature] = []
    udp_whole: list[Signature] = []
    for signature in rules:
        if signature.protocol == "udp":
            udp_whole.append(signature)
            continue
        try:
            splits[signature.sid] = split_signature(signature, policy, model)
        except UnsplittableSignatureError:
            unsplittable.append(signature)
    return SplitRuleSet(
        policy=policy, splits=splits, unsplittable=unsplittable, udp_whole=udp_whole
    )
