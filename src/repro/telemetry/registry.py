"""Dependency-free runtime telemetry: counters, gauges, histograms, journal.

The paper's headline claims are quantitative (state ratio, diversion
fraction, per-stage cycle budgets), so every run should be able to report
them live.  This module is the instrumentation core the IPS engines call
into: a :class:`TelemetryRegistry` holding named metric families, plus a
bounded structured :class:`EventJournal` for discrete events (diversions,
reinstatements, eviction sweeps).

Design constraints, in priority order:

1. **Zero cost when disabled.**  Every engine defaults to the shared
   :data:`NULL_REGISTRY`; its instruments are no-op singletons, and the
   engines additionally guard each timing site on ``registry.enabled``
   so a disabled run never reads the monotonic clock.
2. **No dependencies.**  Pure stdlib; exporters (`export.py`) emit
   Prometheus text format and JSON without a client library.
3. **Fixed bucket edges.**  Histograms pre-declare their edges (the
   Prometheus model), so observation is one bisect + two adds and the
   export is reproducible across runs.

Metric naming follows ``repro_<subsystem>_<name>_<unit>`` (see
DESIGN.md's Telemetry section); label values partition a family into
children, e.g. ``repro_fastpath_anomaly_total{cause="tiny_segment"}``.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from collections.abc import Iterator, Sequence
from typing import Any

#: Latency bucket edges in nanoseconds (monotonic-clock deltas).  Spans
#: sub-microsecond pure-Python dispatch up to multi-millisecond slow-path
#: reassembly bursts; values above the last edge land in +Inf.
LATENCY_NS_BUCKETS: tuple[float, ...] = (
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    250_000.0,
    500_000.0,
    1_000_000.0,
    2_500_000.0,
    10_000_000.0,
    50_000_000.0,
)

#: Size bucket edges in bytes (payload sizes, buffer occupancy).  Edges
#: track wire reality: tiny-segment threshold region, common MTU payloads
#: (1460), and the provisioned 4 KiB reassembly buffer.
SIZE_BYTES_BUCKETS: tuple[float, ...] = (
    0.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1_024.0,
    1_460.0,
    4_096.0,
    16_384.0,
    65_536.0,
)

#: Default bound on the structured event journal.
JOURNAL_CAPACITY = 1024


def _label_key(
    label_names: tuple[str, ...], labels: dict[str, str]
) -> tuple[str, ...]:
    """Validate and order label values against the family's declaration."""
    if set(labels) != set(label_names):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared names {sorted(label_names)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class Counter:
    """A monotonically increasing metric family.

    With no declared label names the family is its own single child and
    ``inc`` applies directly; with label names, call ``labels(...)`` to
    bind (and cache) a child per label-value combination.
    """

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._values: dict[tuple[str, ...], float] = {}
        self._children: dict[tuple[str, ...], _BoundCounter] = {}
        if not self.label_names:
            self._values[()] = 0

    def labels(self, **labels: str) -> "_BoundCounter":
        key = _label_key(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            self._values.setdefault(key, 0)
            child = _BoundCounter(self._values, key)
            self._children[key] = child
        return child

    def inc(self, amount: float = 1) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} declares labels; use .labels(...)")
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self._values[()] += amount

    @property
    def value(self) -> float:
        """Unlabeled value, or the sum across children."""
        return sum(self._values.values())

    def value_for(self, **labels: str) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0)

    def samples(self) -> Iterator[tuple[dict[str, str], float]]:
        for key, value in sorted(self._values.items()):
            yield dict(zip(self.label_names, key)), value


class _BoundCounter:
    """One label-value combination of a :class:`Counter` (hot-path handle)."""

    __slots__ = ("_values", "_key")

    def __init__(self, values: dict[tuple[str, ...], float], key: tuple[str, ...]):
        self._values = values
        self._key = key

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counter cannot decrease")
        self._values[self._key] += amount

    @property
    def value(self) -> float:
        return self._values[self._key]


class Gauge:
    """A point-in-time value family (occupancy, state bytes, ratios)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._values: dict[tuple[str, ...], float] = {}
        self._children: dict[tuple[str, ...], _BoundGauge] = {}
        if not self.label_names:
            self._values[()] = 0

    def labels(self, **labels: str) -> "_BoundGauge":
        key = _label_key(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            self._values.setdefault(key, 0)
            child = _BoundGauge(self._values, key)
            self._children[key] = child
        return child

    def set(self, value: float) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} declares labels; use .labels(...)")
        self._values[()] = value

    def inc(self, amount: float = 1) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} declares labels; use .labels(...)")
        self._values[()] += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return sum(self._values.values())

    def value_for(self, **labels: str) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0)

    def samples(self) -> Iterator[tuple[dict[str, str], float]]:
        for key, value in sorted(self._values.items()):
            yield dict(zip(self.label_names, key)), value


class _BoundGauge:
    __slots__ = ("_values", "_key")

    def __init__(self, values: dict[tuple[str, ...], float], key: tuple[str, ...]):
        self._values = values
        self._key = key

    def set(self, value: float) -> None:
        self._values[self._key] = value

    def inc(self, amount: float = 1) -> None:
        self._values[self._key] += amount

    def dec(self, amount: float = 1) -> None:
        self._values[self._key] -= amount

    @property
    def value(self) -> float:
        return self._values[self._key]


class _HistogramChild:
    """Bucket counts + sum/count for one label combination.

    ``observe`` uses Prometheus ``le`` semantics: a value exactly on a
    bucket edge belongs to that edge's bucket (``value <= edge``).
    Per-bucket counts are stored non-cumulative; exporters cumulate.
    """

    __slots__ = ("edges", "bucket_counts", "sum", "count")

    def __init__(self, edges: tuple[float, ...]):
        self.edges = edges
        self.bucket_counts = [0] * (len(edges) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.edges, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per edge plus +Inf (the Prometheus wire form)."""
        out: list[int] = []
        total = 0
        for n in self.bucket_counts:
            total += n
            out.append(total)
        return out


class Histogram:
    """Fixed-bucket-edge distribution family."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_NS_BUCKETS,
    ) -> None:
        edges = tuple(float(edge) for edge in buckets)
        if not edges:
            raise ValueError(f"histogram {name} needs at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"histogram {name} bucket edges must strictly increase")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.edges = edges
        self._children: dict[tuple[str, ...], _HistogramChild] = {}
        if not self.label_names:
            self._children[()] = _HistogramChild(edges)

    def labels(self, **labels: str) -> _HistogramChild:
        key = _label_key(self.label_names, labels)
        child = self._children.get(key)
        if child is None:
            child = _HistogramChild(self.edges)
            self._children[key] = child
        return child

    def observe(self, value: float) -> None:
        if self.label_names:
            raise ValueError(f"{self.name} declares labels; use .labels(...)")
        self._children[()].observe(value)

    @property
    def count(self) -> int:
        return sum(child.count for child in self._children.values())

    @property
    def sum(self) -> float:
        return sum(child.sum for child in self._children.values())

    def child_for(self, **labels: str) -> _HistogramChild | None:
        return self._children.get(_label_key(self.label_names, labels))

    def samples(self) -> Iterator[tuple[dict[str, str], _HistogramChild]]:
        for key, child in sorted(self._children.items()):
            yield dict(zip(self.label_names, key)), child


class EventJournal:
    """Bounded ring of structured events.

    Each record is a plain dict ``{"ts", "subsystem", "event", **fields}``.
    When full, the oldest record is dropped and ``dropped`` counts it, so
    the journal's total-event arithmetic stays reconcilable:
    ``len(journal) + journal.dropped == journal.recorded``.
    """

    def __init__(self, capacity: int = JOURNAL_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"journal capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0

    def record(self, subsystem: str, event: str, ts: float = 0.0, **fields: Any) -> None:
        self.recorded += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append({"ts": ts, "subsystem": subsystem, "event": event, **fields})

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> list[dict[str, Any]]:
        return list(self._events)


class TelemetryRegistry:
    """Named metric families plus one event journal.

    Registration is idempotent: asking for an existing name returns the
    existing family (so harness code can look up what an engine created),
    but re-declaring it with a different kind, label set, or bucket edges
    is an error -- that is always a naming-collision bug.
    """

    enabled = True

    def __init__(self, *, journal_capacity: int = JOURNAL_CAPACITY) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self.journal = EventJournal(journal_capacity)

    def _register(self, cls, name: str, help: str, label_names, **kw):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"{name} already registered as {existing.kind}, not {cls.kind}"
                )
            if existing.label_names != tuple(label_names):
                raise ValueError(
                    f"{name} already registered with labels {existing.label_names}"
                )
            if kw.get("buckets") is not None and tuple(
                float(b) for b in kw["buckets"]
            ) != existing.edges:
                raise ValueError(f"{name} already registered with different buckets")
            return existing
        metric = cls(name, help, label_names, **kw) if kw else cls(name, help, label_names)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_NS_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, label_names, buckets=buckets)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def metrics(self) -> list[Counter | Gauge | Histogram]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump of every family and the journal."""
        counters: dict[str, Any] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
        for metric in self.metrics():
            if isinstance(metric, Counter):
                counters[metric.name] = {
                    "help": metric.help,
                    "label_names": list(metric.label_names),
                    "values": [
                        {"labels": labels, "value": value}
                        for labels, value in metric.samples()
                    ],
                }
            elif isinstance(metric, Gauge):
                gauges[metric.name] = {
                    "help": metric.help,
                    "label_names": list(metric.label_names),
                    "values": [
                        {"labels": labels, "value": value}
                        for labels, value in metric.samples()
                    ],
                }
            else:
                histograms[metric.name] = {
                    "help": metric.help,
                    "label_names": list(metric.label_names),
                    "bucket_edges": list(metric.edges),
                    "values": [
                        {
                            "labels": labels,
                            "cumulative_counts": child.cumulative(),
                            "sum": child.sum,
                            "count": child.count,
                        }
                        for labels, child in metric.samples()
                    ],
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "journal": {
                "capacity": self.journal.capacity,
                "recorded": self.journal.recorded,
                "dropped": self.journal.dropped,
                "events": self.journal.events(),
            },
        }


class _NullInstrument:
    """One object impersonating every disabled metric family and child."""

    __slots__ = ()

    def labels(self, **_labels: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0

    count = 0
    sum = 0.0


class _NullJournal:
    __slots__ = ()
    capacity = 0
    dropped = 0
    recorded = 0

    def record(self, subsystem: str, event: str, ts: float = 0.0, **fields: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def events(self) -> list[dict[str, Any]]:
        return []


_NULL_INSTRUMENT = _NullInstrument()
_NULL_JOURNAL = _NullJournal()


class NullRegistry:
    """The disabled registry: every instrument is a shared no-op singleton.

    Engines hold instrument references obtained at construction, so a
    disabled run's per-packet cost is one ``enabled`` check per guarded
    site (and nothing at all where the call is an unguarded no-op
    method).
    """

    enabled = False
    journal = _NULL_JOURNAL

    def counter(self, name: str, help: str = "", label_names: Sequence[str] = ()):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", label_names: Sequence[str] = ()):
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_NS_BUCKETS,
    ):
        return _NULL_INSTRUMENT

    def get(self, name: str) -> None:
        return None

    def metrics(self) -> list:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {}


#: The shared disabled registry every engine defaults to.
NULL_REGISTRY = NullRegistry()
