"""Tests for flow keys, TCP-in-IP construction, and decode helpers."""

import pytest

from repro.packet import (
    FlowKey,
    IPv4Packet,
    TcpSegment,
    build_tcp_packet,
    decode_tcp,
    flow_key_of,
    fragment,
)


class TestFlowKey:
    def test_reversed(self):
        key = FlowKey("1.1.1.1", "2.2.2.2", 1000, 80)
        rev = key.reversed()
        assert rev.src == "2.2.2.2" and rev.src_port == 80
        assert rev.reversed() == key

    def test_canonical_is_direction_insensitive(self):
        key = FlowKey("9.9.9.9", "2.2.2.2", 1000, 80)
        assert key.canonical() == key.reversed().canonical()

    def test_canonical_of_canonical_is_identity(self):
        key = FlowKey("2.2.2.2", "9.9.9.9", 80, 1000)
        assert key.canonical().canonical() == key.canonical()

    def test_hashable_and_str(self):
        key = FlowKey("1.1.1.1", "2.2.2.2", 1000, 80)
        assert key in {key}
        assert "1.1.1.1:1000" in str(key)


class TestBuildDecode:
    def test_round_trip(self):
        seg = TcpSegment(src_port=40000, dst_port=443, seq=7, payload=b"hello")
        pkt = build_tcp_packet("10.0.0.1", "10.0.0.9", seg)
        wire = IPv4Packet.parse(pkt.serialize())
        decoded = decode_tcp(wire, strict=True)
        assert decoded == seg

    def test_flow_key_of_tcp(self):
        seg = TcpSegment(src_port=40000, dst_port=443)
        pkt = build_tcp_packet("10.0.0.1", "10.0.0.9", seg)
        key = flow_key_of(pkt)
        assert key == FlowKey("10.0.0.1", "10.0.0.9", 40000, 443)

    def test_decode_rejects_non_tcp(self):
        pkt = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", protocol=17, payload=b"x" * 8)
        with pytest.raises(ValueError):
            decode_tcp(pkt)

    def test_decode_rejects_fragment(self):
        seg = TcpSegment(src_port=40000, dst_port=443, payload=b"x" * 100)
        pkt = build_tcp_packet("10.0.0.1", "10.0.0.9", seg, dont_fragment=False)
        frags = fragment(pkt, 68)
        with pytest.raises(ValueError):
            decode_tcp(frags[0])

    def test_flow_key_of_nonfirst_fragment_raises(self):
        seg = TcpSegment(src_port=40000, dst_port=443, payload=b"x" * 200)
        pkt = build_tcp_packet("10.0.0.1", "10.0.0.9", seg, dont_fragment=False)
        frags = fragment(pkt, 68)
        assert len(frags) > 1
        with pytest.raises(ValueError):
            flow_key_of(frags[1])

    def test_first_fragment_still_yields_ports(self):
        seg = TcpSegment(src_port=40000, dst_port=443, payload=b"x" * 200)
        pkt = build_tcp_packet("10.0.0.1", "10.0.0.9", seg, dont_fragment=False)
        first = fragment(pkt, 68)[0]
        key = flow_key_of(first)
        assert key.src_port == 40000 and key.dst_port == 443
