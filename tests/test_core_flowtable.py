"""Tests for the fixed set-associative flow table and its fast-path wiring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import attack_payload, attack_ruleset, signature_span
from repro.core import (
    FAST_FLOW_STATE_BYTES,
    AlertKind,
    FastPathConfig,
    FlowTable,
    SplitDetectIPS,
    fnv1a_64,
)
from repro.evasion import build_attack
from repro.traffic import TrafficProfile, generate_trace


class TestFnv:
    def test_known_vector(self):
        # FNV-1a 64-bit test vectors.
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_spreads_bits(self):
        hashes = {fnv1a_64(f"10.0.0.{i}".encode()) & 1023 for i in range(256)}
        assert len(hashes) > 150  # buckets well spread


class TestFlowTable:
    def test_basic_put_get(self):
        table = FlowTable(buckets=8, ways=2)
        table.put("a", 1)
        assert table.get("a") == 1
        assert table.get("b") is None
        assert len(table) == 1

    def test_update_in_place(self):
        table = FlowTable(buckets=8, ways=2)
        table.put("a", 1)
        table.put("a", 2)
        assert table.get("a") == 2
        assert len(table) == 1
        assert table.evictions == 0

    def test_eviction_when_bucket_full(self):
        table = FlowTable(buckets=1, ways=2)  # single bucket forces conflicts
        table.put("a", 1)
        table.put("b", 2)
        evicted = table.put("c", 3)
        assert evicted == "a"  # LRU victim
        assert table.evictions == 1
        assert table.get("a") is None
        assert len(table) == 2

    def test_lru_refresh_on_get(self):
        table = FlowTable(buckets=1, ways=2)
        table.put("a", 1)
        table.put("b", 2)
        table.get("a")  # refresh "a"; "b" becomes the victim
        evicted = table.put("c", 3)
        assert evicted == "b"

    def test_pop(self):
        table = FlowTable(buckets=4, ways=2)
        table.put("a", 1)
        assert table.pop("a") == 1
        assert table.pop("a") is None
        assert table.pop("a", "dflt") == "dflt"
        assert len(table) == 0

    def test_setitem_is_put(self):
        table = FlowTable(buckets=4, ways=2)
        table["k"] = 9
        assert table.get("k") == 9

    def test_capacity_and_load(self):
        table = FlowTable(buckets=4, ways=2)
        assert table.capacity == 8
        table.put("a", 1)
        assert table.load_factor == pytest.approx(1 / 8)

    def test_clear(self):
        table = FlowTable(buckets=4, ways=2)
        table.put("a", 1)
        table.clear()
        assert len(table) == 0 and table.get("a") is None

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            FlowTable(buckets=3)
        with pytest.raises(ValueError):
            FlowTable(buckets=8, ways=0)

    def test_hit_miss_counters(self):
        table = FlowTable(buckets=4, ways=2)
        table.put("a", 1)
        table.get("a")
        table.get("zz")
        assert table.hits == 1 and table.misses == 1

    def test_peek_returns_value_without_counting(self):
        table = FlowTable(buckets=4, ways=2)
        table.put("a", 1)
        assert table.peek("a") == 1
        assert table.peek("zz") is None
        assert table.hits == 0 and table.misses == 0

    def test_peek_does_not_refresh_lru(self):
        # Same shape as test_lru_refresh_on_get, but the passive read
        # must NOT protect "a": it stays the LRU victim.
        table = FlowTable(buckets=1, ways=2)
        table.put("a", 1)
        table.put("b", 2)
        table.peek("a")
        evicted = table.put("c", 3)
        assert evicted == "a"

    @given(
        ops=st.lists(
            st.tuples(st.integers(min_value=0, max_value=40), st.booleans()),
            max_size=200,
        )
    )
    @settings(max_examples=80)
    def test_matches_bounded_dict_semantics(self, ops):
        """Whatever the access pattern, entries present in the table must
        return the latest value written, and size never exceeds capacity."""
        table = FlowTable(buckets=4, ways=2)
        shadow = {}
        for key, is_put in ops:
            if is_put:
                table.put(key, ("v", key))
                shadow[key] = ("v", key)
            else:
                got = table.get(key)
                if got is not None:
                    assert got == shadow[key]
            assert len(table) <= table.capacity


class TestFastPathWithTable:
    def test_state_bytes_is_provisioned_capacity(self):
        config = FastPathConfig(table_buckets=64, table_ways=2)
        ips = SplitDetectIPS(attack_ruleset(), fast_config=config)
        assert ips.fast_path.state_bytes() == 64 * 2 * FAST_FLOW_STATE_BYTES

    def test_detection_survives_tiny_table(self):
        """Even a pathologically small table (constant evictions) cannot
        hide the catalog attack: piece matching is stateless."""
        config = FastPathConfig(table_buckets=2, table_ways=1)
        ips = SplitDetectIPS(attack_ruleset(), fast_config=config)
        trace = generate_trace(TrafficProfile(flows=30), seed=5)
        attack = build_attack(
            "tcp_seg_8", attack_payload(), signature_span=signature_span(),
            src="10.99.0.1",
        )
        from repro.traffic import inject_attacks

        alerts = []
        for packet in inject_attacks(trace, [attack]):
            alerts.extend(ips.process(packet))
        assert any(
            a.sid == 5001 and a.kind in (AlertKind.SIGNATURE, AlertKind.PARTIAL_SIGNATURE)
            for a in alerts
        )
        assert ips.fast_path.table_evictions > 0

    def test_no_evictions_when_table_ample(self):
        config = FastPathConfig(table_buckets=4096, table_ways=4)
        ips = SplitDetectIPS(attack_ruleset(), fast_config=config)
        for packet in generate_trace(TrafficProfile(flows=30), seed=5):
            ips.process(packet)
        assert ips.fast_path.table_evictions == 0

    def test_unbounded_default_reports_zero_evictions(self):
        ips = SplitDetectIPS(attack_ruleset())
        assert ips.fast_path.table_evictions == 0
