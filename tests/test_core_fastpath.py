"""Unit tests for the Split-Detect fast path."""

import pytest

from helpers import ATTACK_SIGNATURE, attack_ruleset
from repro.core import FAST_FLOW_STATE_BYTES, DivertReason, FastPath, FastPathConfig
from repro.evasion import build_attack, even_segments, plan_to_packets
from repro.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TcpSegment,
    TimedPacket,
    build_tcp_packet,
    fragment,
)
from repro.signatures import SplitPolicy, split_ruleset


def make_fastpath(config=None, piece_length=8):
    rules = attack_ruleset()
    split = split_ruleset(rules, SplitPolicy(piece_length=piece_length))
    return FastPath(split, config)


def packets_for(payload, size=512, **conn):
    return plan_to_packets(even_segments(payload, size), **conn)


def run(fastpath, packets):
    results = [fastpath.process(p) for p in packets]
    diverts = [r.divert for r in results if r.divert]
    return results, diverts


class TestCleanTraffic:
    def test_benign_in_order_flow_passes(self):
        fp = make_fastpath()
        payload = b"Nothing suspicious here at all, plain web browsing. " * 40
        _, diverts = run(fp, packets_for(payload))
        assert diverts == []

    def test_flow_state_created_and_freed(self):
        fp = make_fastpath()
        packets = packets_for(b"benign data benign data benign data " * 30)
        for packet in packets[:-1]:
            fp.process(packet)
        assert fp.tracked_flows == 1
        fp.process(packets[-1])  # FIN frees the entry
        assert fp.tracked_flows == 0

    def test_rst_frees_state(self):
        fp = make_fastpath()
        fp.process(packets_for(b"x" * 600)[0])  # SYN
        rst = TcpSegment(src_port=44000, dst_port=80, seq=9, flags=TCP_RST)
        fp.process(TimedPacket(1.0, build_tcp_packet("10.9.9.9", "10.0.0.2", rst)))
        assert fp.tracked_flows == 0

    def test_state_bytes_accounting(self):
        fp = make_fastpath()
        packets = packets_for(b"a" * 600, src_port=1001) + packets_for(b"b" * 600, src_port=1002)
        for packet in packets:
            if not packet.ip.payload:
                continue
            fp.process(packet)
        assert fp.state_bytes() == fp.tracked_flows * FAST_FLOW_STATE_BYTES


def tcp_at(timestamp, src, dst, segment, **kw):
    return TimedPacket(timestamp, build_tcp_packet(src, dst, segment, **kw))


class TestStateLeakRegression:
    """Monitor entries must never outlive their flow (leak regressions)."""

    CLIENT = "10.9.9.9"
    SERVER = "10.0.0.2"

    def _client_seg(self, **kw):
        return TcpSegment(src_port=44000, dst_port=80, **kw)

    def _server_seg(self, **kw):
        return TcpSegment(src_port=80, dst_port=44000, **kw)

    def _bidirectional(self, fp):
        """Data in both directions: one monitor entry per direction."""
        fp.process(tcp_at(0.0, self.CLIENT, self.SERVER,
                          self._client_seg(seq=1, flags=TCP_ACK, payload=b"c" * 600)))
        fp.process(tcp_at(0.1, self.SERVER, self.CLIENT,
                          self._server_seg(seq=1, flags=TCP_ACK, payload=b"s" * 600)))
        assert fp.tracked_flows == 2

    def test_rst_clears_both_directions(self):
        fp = make_fastpath()
        self._bidirectional(fp)
        fp.process(tcp_at(0.2, self.CLIENT, self.SERVER,
                          self._client_seg(seq=601, flags=TCP_RST)))
        assert fp.tracked_flows == 0

    def test_fin_closes_only_the_sender_direction(self):
        fp = make_fastpath()
        self._bidirectional(fp)
        fp.process(tcp_at(0.2, self.CLIENT, self.SERVER,
                          self._client_seg(seq=601, flags=TCP_FIN | TCP_ACK)))
        # The server may still be sending; its monitor entry survives.
        assert fp.tracked_flows == 1

    def test_final_ack_does_not_resurrect_closed_flow(self):
        fp = make_fastpath()
        self._bidirectional(fp)
        fp.process(tcp_at(0.2, self.CLIENT, self.SERVER,
                          self._client_seg(seq=601, flags=TCP_FIN | TCP_ACK)))
        fp.process(tcp_at(0.3, self.SERVER, self.CLIENT,
                          self._server_seg(seq=601, flags=TCP_FIN | TCP_ACK)))
        assert fp.tracked_flows == 0
        # The handshake's final pure ACK must not recreate an entry.
        fp.process(tcp_at(0.4, self.CLIENT, self.SERVER,
                          self._client_seg(seq=602, flags=TCP_ACK)))
        assert fp.tracked_flows == 0

    def test_pure_ack_creates_no_state(self):
        fp = make_fastpath()
        fp.process(tcp_at(0.0, self.CLIENT, self.SERVER,
                          self._client_seg(seq=1, flags=TCP_ACK)))
        assert fp.tracked_flows == 0

    def test_evict_idle_reclaims_only_stale_entries(self):
        fp = make_fastpath()
        fp.process(tcp_at(0.0, self.CLIENT, self.SERVER,
                          TcpSegment(src_port=1001, dst_port=80, seq=1,
                                     flags=TCP_ACK, payload=b"a" * 600)))
        fp.process(tcp_at(200.0, self.CLIENT, self.SERVER,
                          TcpSegment(src_port=1002, dst_port=80, seq=1,
                                     flags=TCP_ACK, payload=b"b" * 600)))
        assert fp.tracked_flows == 2
        assert fp.evict_idle(now=350.0) == 1  # default timeout 300s
        assert fp.tracked_flows == 1
        (survivor,) = fp.live_flows()
        assert 1002 in (survivor.src_port, survivor.dst_port)


class TestAnomalyMonitor:
    def test_tiny_segment_diverts(self):
        fp = make_fastpath()
        _, diverts = run(fp, packets_for(b"x" * 100, size=4))
        assert DivertReason.TINY_SEGMENT in diverts

    def test_final_fin_segment_exempt_from_tiny(self):
        fp = make_fastpath()
        # 600 bytes at size 512: final segment is 88 bytes with FIN; 88 < B
        # never happens with B=16, so use a 3-byte FIN tail explicitly.
        packets = packets_for(b"x" * 515, size=512)
        results, diverts = run(fp, packets)
        assert diverts == []

    def test_out_of_order_diverts(self):
        fp = make_fastpath()
        packets = packets_for(b"x" * 2000, size=500)
        reordered = [packets[0], packets[2], packets[1]] + packets[3:]
        _, diverts = run(fp, reordered)
        assert DivertReason.OUT_OF_ORDER in diverts

    def test_retransmission_diverts(self):
        fp = make_fastpath()
        packets = packets_for(b"x" * 2000, size=500)
        replayed = packets[:3] + [packets[2]] + packets[3:]
        _, diverts = run(fp, replayed)
        assert DivertReason.RETRANSMISSION in diverts

    def test_fragment_diverts(self):
        fp = make_fastpath()
        seg = TcpSegment(src_port=44000, dst_port=80, seq=1, flags=TCP_ACK, payload=b"y" * 600)
        big = build_tcp_packet("10.9.9.9", "10.0.0.2", seg, dont_fragment=False)
        frags = fragment(big, 256)
        result = fp.process(TimedPacket(0.0, frags[0]))
        assert result.divert == DivertReason.IP_FRAGMENT

    def test_monitor_checks_can_be_disabled(self):
        config = FastPathConfig(check_tiny=False, check_order=False, divert_fragments=False)
        fp = make_fastpath(config)
        packets = packets_for(b"x" * 2000, size=4)
        _, diverts = run(fp, packets)
        assert DivertReason.TINY_SEGMENT not in diverts

    def test_threshold_override(self):
        fp = make_fastpath(FastPathConfig(threshold_override=600))
        _, diverts = run(fp, packets_for(b"x" * 2000, size=512))
        assert DivertReason.TINY_SEGMENT in diverts

    def test_threshold_comes_from_ruleset(self):
        fp = make_fastpath(piece_length=10)
        assert fp.threshold == 20

    def test_low_ttl_data_packet_diverts(self):
        fp = make_fastpath()
        seg = TcpSegment(src_port=44000, dst_port=80, seq=1, flags=TCP_ACK, payload=b"y" * 600)
        low = build_tcp_packet("10.9.9.9", "10.0.0.2", seg, ttl=2)
        result = fp.process(TimedPacket(0.0, low))
        assert result.divert == DivertReason.TTL_FLOOR

    def test_low_ttl_pure_ack_tolerated(self):
        fp = make_fastpath()
        seg = TcpSegment(src_port=44000, dst_port=80, seq=1, flags=TCP_ACK)
        low = build_tcp_packet("10.9.9.9", "10.0.0.2", seg, ttl=2)
        result = fp.process(TimedPacket(0.0, low))
        assert result.divert is None

    def test_ttl_floor_configurable(self):
        fp = make_fastpath(FastPathConfig(min_ttl=0))
        seg = TcpSegment(src_port=44000, dst_port=80, seq=1, flags=TCP_ACK, payload=b"y" * 600)
        low = build_tcp_packet("10.9.9.9", "10.0.0.2", seg, ttl=1)
        result = fp.process(TimedPacket(0.0, low))
        assert result.divert is None

    def test_seed_flow_presets_expected_seq(self):
        from repro.packet import FlowKey

        fp = make_fastpath()
        flow = FlowKey("10.9.9.9", "10.0.0.2", 44000, 80)
        fp.seed_flow(flow, 5000)
        assert fp.expected_seq(flow) == 5000
        seg = TcpSegment(src_port=44000, dst_port=80, seq=6000, flags=TCP_ACK, payload=b"z" * 600)
        result = fp.process(TimedPacket(0.0, build_tcp_packet("10.9.9.9", "10.0.0.2", seg)))
        assert result.divert == DivertReason.OUT_OF_ORDER
        assert result.flow_expected_seq == 5000


class TestPieceScanning:
    def test_whole_signature_in_one_packet_diverts(self):
        fp = make_fastpath()
        payload = b"A" * 100 + ATTACK_SIGNATURE + b"B" * 100
        results, diverts = run(fp, packets_for(payload, size=1460))
        assert DivertReason.PIECE_MATCH in diverts
        hits = [h for r in results for h in r.piece_hits]
        assert {h.signature.sid for h in hits} == {5001}

    def test_single_piece_in_packet_diverts(self):
        fp = make_fastpath()
        rules = attack_ruleset()
        split = split_ruleset(rules, SplitPolicy(piece_length=8))
        piece = split.splits[5001].pieces[1]
        payload = b"x" * 50 + piece.data + b"y" * 50
        _, diverts = run(fp, packets_for(payload))
        assert DivertReason.PIECE_MATCH in diverts

    def test_wrong_port_piece_does_not_divert(self):
        fp = make_fastpath()
        payload = b"A" * 50 + ATTACK_SIGNATURE + b"B" * 50
        packets = packets_for(payload, dst_port=8081)  # sid 5001 is port-80 only
        _, diverts = run(fp, packets)
        assert DivertReason.PIECE_MATCH not in diverts

    def test_bytes_scanned_counts_payload(self):
        fp = make_fastpath()
        payload = b"q" * 700
        run(fp, packets_for(payload, size=512))
        assert fp.bytes_scanned == 700

    def test_short_signature_whole_match_alerts(self):
        from repro.signatures import Signature

        rules = attack_ruleset(extra=[Signature(sid=9001, pattern=b"tiny!", msg="short")])
        split = split_ruleset(rules, SplitPolicy(piece_length=8))
        assert any(s.sid == 9001 for s in split.unsplittable)
        fp = FastPath(split)
        payload = b"aaaa tiny! bbbb" + b"c" * 100
        results, diverts = run(fp, packets_for(payload))
        alerts = [a for r in results for a in r.alerts]
        assert any(a.sid == 9001 and a.path == "fast" for a in alerts)

    def test_short_signature_scan_can_be_disabled(self):
        from repro.signatures import Signature

        rules = attack_ruleset(extra=[Signature(sid=9001, pattern=b"tiny!", msg="short")])
        split = split_ruleset(rules, SplitPolicy(piece_length=8))
        fp = FastPath(split, FastPathConfig(scan_short_signatures=False))
        payload = b"aaaa tiny! bbbb" + b"c" * 100
        results, _ = run(fp, packets_for(payload))
        assert all(not r.alerts for r in results)


class TestSeedFlowLifecycle:
    """A re-seeded flow must survive the idle sweep that follows it."""

    def _flow(self):
        from repro.packet import FlowKey

        return FlowKey("10.9.9.9", "10.0.0.2", 44000, 80)

    def test_seeded_flow_survives_next_idle_sweep(self):
        # Regression: seed_flow used to leave last_seen=0.0, so a flow
        # released from slow-path probation at t=1000 looked 1000s idle
        # and the very next sweep reclaimed it.
        fp = make_fastpath()
        fp.seed_flow(self._flow(), 5000, now=1000.0)
        assert fp.evict_idle(1000.5) == 0
        assert fp.expected_seq(self._flow()) == 5000

    def test_seeded_flow_still_ages_out_when_genuinely_idle(self):
        fp = make_fastpath()
        fp.seed_flow(self._flow(), 5000, now=1000.0)
        assert fp.evict_idle(1000.0 + 301.0) == 1
        assert fp.expected_seq(self._flow()) is None

    def test_seed_then_traffic_resumes_in_order(self):
        fp = make_fastpath()
        fp.seed_flow(self._flow(), 5000, now=1000.0)
        fp.evict_idle(1000.5)  # the sweep that used to kill the seed
        seg = TcpSegment(src_port=44000, dst_port=80, seq=5000,
                         flags=TCP_ACK, payload=b"z" * 600)
        result = fp.process(
            TimedPacket(1001.0, build_tcp_packet("10.9.9.9", "10.0.0.2", seg))
        )
        assert result.divert is None  # in order from the seeded position

    def test_expected_seq_probe_is_passive_on_table_backend(self):
        # The diversion-time snapshot must not promote the probed entry
        # over genuinely active flows in the fixed table.
        fp = make_fastpath(FastPathConfig(table_buckets=1, table_ways=2))
        table = fp._flows
        fp.seed_flow(self._flow(), 100, now=0.0)
        other = self._flow().reversed()
        fp.seed_flow(other, 200, now=0.0)
        hits_before, misses_before = table.hits, table.misses
        assert fp.expected_seq(self._flow()) == 100
        assert (table.hits, table.misses) == (hits_before, misses_before)
        # LRU order unchanged: the probed flow is still the victim.
        assert next(iter(table.items()))[0] == self._flow()


class TestConfirmedWholeMatchSemantics:
    """A whole-signature occurrence confirmed in one packet is a final
    fast-path verdict: alert, no slow-path round trip."""

    def _tiny_ruleset(self):
        from repro.signatures import Signature

        return attack_ruleset(extra=[Signature(sid=9001, pattern=b"tiny!", msg="short")])

    def test_confirmed_short_signature_does_not_divert(self):
        split = split_ruleset(self._tiny_ruleset(), SplitPolicy(piece_length=8))
        fp = FastPath(split)
        payload = b"aaaa tiny! bbbb" + b"c" * 600
        results, diverts = run(fp, packets_for(payload, size=700))
        alerts = [a for r in results for a in r.alerts]
        assert any(a.sid == 9001 and a.path == "fast" for a in alerts)
        assert diverts == []

    def test_confirmed_match_emits_one_alert_not_short_signature_divert(self):
        split = split_ruleset(self._tiny_ruleset(), SplitPolicy(piece_length=8))
        fp = FastPath(split)
        payload = b"aaaa tiny! bbbb" + b"c" * 600
        results, _ = run(fp, packets_for(payload, size=700))
        assert all(r.divert is not DivertReason.SHORT_SIGNATURE for r in results)

    def test_split_signature_in_one_packet_still_diverts_via_pieces(self):
        # The whole-signature fast confirm must not swallow the piece
        # hits: a split signature's occurrence keeps diverting so the
        # slow path can catch other, split-across-packets occurrences.
        fp = make_fastpath()
        payload = b"A" * 100 + ATTACK_SIGNATURE + b"B" * 100
        results, diverts = run(fp, packets_for(payload, size=1460))
        assert DivertReason.PIECE_MATCH in diverts
        assert any(a.sid == 5001 and a.path == "fast" for r in results for a in r.alerts)


class TestSequenceWraparound:
    """32-bit sequence arithmetic through the monitor (RFC 793 wrap)."""

    CLIENT = "10.9.9.9"
    SERVER = "10.0.0.2"

    def _seg(self, seq, payload=b"", flags=TCP_ACK):
        return TcpSegment(src_port=44000, dst_port=80, seq=seq,
                          flags=flags, payload=payload)

    def test_in_order_advance_across_wrap(self):
        from repro.packet import TCP_SYN

        fp = make_fastpath()
        start = 2**32 - 300
        fp.process(tcp_at(0.0, self.CLIENT, self.SERVER,
                          self._seg(start, flags=TCP_SYN)))
        r1 = fp.process(tcp_at(0.1, self.CLIENT, self.SERVER,
                               self._seg(start + 1, payload=b"a" * 600)))
        assert r1.divert is None
        from repro.packet import FlowKey

        # 600 bytes from 2**32-299 crosses the wrap: expected is now 301.
        flow = FlowKey(self.CLIENT, self.SERVER, 44000, 80)
        assert fp.expected_seq(flow) == 301
        r2 = fp.process(tcp_at(0.2, self.CLIENT, self.SERVER,
                               self._seg(301, payload=b"b" * 600)))
        assert r2.divert is None
        assert fp.expected_seq(flow) == 901

    def test_ahead_across_wrap_is_out_of_order(self):
        from repro.packet import TCP_SYN

        fp = make_fastpath()
        fp.process(tcp_at(0.0, self.CLIENT, self.SERVER,
                          self._seg(2**32 - 1, flags=TCP_SYN)))
        # Expected is 0 (the SYN consumed the last pre-wrap number); a
        # segment at 700 is 700 bytes ahead across the boundary.
        result = fp.process(tcp_at(0.1, self.CLIENT, self.SERVER,
                                   self._seg(700, payload=b"x" * 600)))
        assert result.divert == DivertReason.OUT_OF_ORDER

    def test_behind_across_wrap_is_retransmission(self):
        from repro.packet import TCP_SYN

        fp = make_fastpath()
        fp.process(tcp_at(0.0, self.CLIENT, self.SERVER,
                          self._seg(2**32 - 1, flags=TCP_SYN)))
        # Expected is 0; a segment at 2**32-700 is 700 bytes *behind*
        # (seq_diff is negative), not ~4 billion ahead.
        result = fp.process(tcp_at(0.1, self.CLIENT, self.SERVER,
                                   self._seg(2**32 - 700, payload=b"x" * 600)))
        assert result.divert == DivertReason.RETRANSMISSION
