"""Built-in domain rules.

Importing this package registers every rule with the engine registry
(each module applies the :func:`~repro.devtools.splitcheck.engine.register`
decorator at import time).  One module per rule: the rule id is in the
filename, so ``git log`` on a rule's history is one path.
"""

from __future__ import annotations

from . import (  # noqa: F401
    sd101_telemetry_guard,
    sd102_determinism,
    sd103_shard_safety,
    sd104_timing,
    sd105_bytes,
    sd106_worker_status,
    sd107_trace_guard,
    sd108_service_timeouts,
    sd201_metric_registry,
    sd202_wire_protocol,
    sd203_seq_discipline,
    sd204_resource_lifecycle,
)

__all__ = [
    "sd101_telemetry_guard",
    "sd102_determinism",
    "sd103_shard_safety",
    "sd104_timing",
    "sd105_bytes",
    "sd106_worker_status",
    "sd107_trace_guard",
    "sd108_service_timeouts",
    "sd201_metric_registry",
    "sd202_wire_protocol",
    "sd203_seq_discipline",
    "sd204_resource_lifecycle",
]
