"""Trace overhead gate -- the flight recorder must stay near-free.

The tracer inherits the telemetry registry's contract (PR 2 discipline,
enforced statically by splitcheck SD107): one guarded boolean per hot
site when tracing is off, a bounded ring append when on.  This benchmark
enforces the "on" side: the mixed trace is driven through
``SplitDetectIPS.process_batch`` twice per round -- once with the no-op
tracer (the library default) and once fully traced at ``sample=1``, the
worst case, with telemetry off in both arms so the ratio isolates the
tracer -- and the best-of-N traced time must stay within
``MAX_OVERHEAD`` of the best-of-N no-op time.

Tracing must also never change detection: the gate cross-checks that
both arms raise identical alerts.  CI runs this in the observability
smoke job; the measured ratio lands in ``BENCH_trace.json``.
"""

import json
import sys
import time
from pathlib import Path

from exp_common import bundled_rules, emit, mixed_trace
from repro.core import SplitDetectIPS
from repro.telemetry import NULL_TRACER, FlowTracer

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Traced wall-clock must stay within this factor of the no-op run.
MAX_OVERHEAD = 1.15

BATCH_SIZE = 256
ROUNDS = 5


def drive_once(rules, trace, tracer):
    """One full trace pass through process_batch; returns (seconds, alerts)."""
    ips = SplitDetectIPS(rules, tracer=tracer)
    alerts = []
    start = time.perf_counter()
    for index in range(0, len(trace), BATCH_SIZE):
        alerts.extend(ips.process_batch(trace[index : index + BATCH_SIZE]))
    return time.perf_counter() - start, alerts


def test_trace_overhead_gate(capfd):
    rules = bundled_rules()
    trace = mixed_trace()
    drive_once(rules, trace, NULL_TRACER)  # warm-up: automaton, allocator
    baseline = float("inf")
    traced = float("inf")
    baseline_alerts = traced_alerts = None
    # Interleave the arms so clock drift and background noise hit both.
    for _ in range(ROUNDS):
        elapsed, baseline_alerts = drive_once(rules, trace, NULL_TRACER)
        baseline = min(baseline, elapsed)
        elapsed, traced_alerts = drive_once(rules, trace, FlowTracer(sample=1))
        traced = min(traced, elapsed)
    ratio = traced / baseline

    # Tracing must be invisible to detection.
    assert traced_alerts == baseline_alerts

    # The traced run must also have recorded real spans -- a gate that
    # passes because the tracer silently no-opped is no gate.
    tracer = FlowTracer(sample=1)
    _, alerts = drive_once(rules, trace, tracer)
    assert tracer.recorded > 0
    events = {span["event"] for span in tracer.spans()}
    assert "fast_route" in events
    if alerts:
        assert "divert" in events or "confirm" in events

    result = {
        "benchmark": "trace_overhead",
        "packets": len(trace),
        "batch_size": BATCH_SIZE,
        "rounds": ROUNDS,
        "sample": 1,
        "spans_recorded": tracer.recorded,
        "noop_best_s": round(baseline, 6),
        "traced_best_s": round(traced, 6),
        "overhead_ratio": round(ratio, 4),
        "max_overhead": MAX_OVERHEAD,
    }
    (REPO_ROOT / "BENCH_trace.json").write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    emit(
        "trace_overhead",
        [
            f"no-op tracer     best of {ROUNDS}: {baseline * 1e3:8.2f} ms",
            f"traced (1/1)     best of {ROUNDS}: {traced * 1e3:8.2f} ms",
            f"spans recorded: {tracer.recorded}",
            f"overhead ratio: {ratio:.3f}x (gate: <= {MAX_OVERHEAD}x)",
        ],
        capfd,
    )
    assert ratio <= MAX_OVERHEAD, (
        f"trace overhead {ratio:.3f}x exceeds the {MAX_OVERHEAD}x budget"
    )


if __name__ == "__main__":
    import pytest

    sys.exit(pytest.main([__file__, "-x", "-q", "-p", "no:cacheprovider"]))
