"""The FragRoute / Ptacek-Newsham evasion catalog as composable builders.

Each :class:`EvasionStrategy` turns an application payload (which embeds
the attack signature) into a wire packet sequence designed to deliver the
payload to the victim while hiding it from a per-packet or
wrongly-configured matcher.  The catalog mirrors the classic fragroute
configurations the paper cites: tiny TCP segments, reordering,
duplication, inconsistent overlap in both polarities, low-TTL insertion
chaff, and the IP-fragmentation equivalents.

``victim_policy``/``victim_hops`` describe the end host against which the
strategy actually works; tests use :class:`~repro.evasion.victim.Victim`
to verify each strategy really delivers its payload under those
conditions (an "evasion" that corrupts the attack is no evasion).
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field, replace

from ..packet import TimedPacket, fragment
from ..streams import OverlapPolicy
from .plan import Seg, even_segments, plan_to_packets

GARBAGE_BYTE = 0x2E  # '.' -- innocuous filler for chaff/overlay segments


@dataclass
class AttackSpec:
    """Everything a strategy needs to build one attack flow."""

    payload: bytes
    rng: random.Random = field(default_factory=lambda: random.Random(7))
    conn: dict = field(default_factory=dict)
    """Keyword overrides for :func:`plan_to_packets` (src, ports, isn...)."""

    segment_size: int = 512
    """Nominal data segment size for strategies that do not dictate one."""

    signature_span: tuple[int, int] | None = None
    """(offset, length) of the signature within the payload, when the
    attacker knows it (the strongest adversary the theorem defends against)."""


Builder = Callable[[AttackSpec], list[TimedPacket]]


@dataclass(frozen=True)
class EvasionStrategy:
    """One catalog entry."""

    name: str
    description: str
    build: Builder
    victim_policy: OverlapPolicy = OverlapPolicy.FIRST
    victim_hops: int = 0
    evades_naive: bool = True
    """Whether the strategy hides the signature from per-packet matching
    with no reassembly (Table 3's strawman column expectation)."""


def _packets(spec: AttackSpec, segs: list[Seg]) -> list[TimedPacket]:
    return plan_to_packets(segs, **spec.conn)


# -- TCP-level strategies ---------------------------------------------------


def _plain(spec: AttackSpec) -> list[TimedPacket]:
    return _packets(spec, even_segments(spec.payload, 1460))


def _mss_segments(spec: AttackSpec) -> list[TimedPacket]:
    return _packets(spec, even_segments(spec.payload, spec.segment_size))


def _tcp_seg(size: int) -> Builder:
    def build(spec: AttackSpec) -> list[TimedPacket]:
        return _packets(spec, even_segments(spec.payload, size))

    return build


def _tcp_reorder(spec: AttackSpec) -> list[TimedPacket]:
    segs = even_segments(spec.payload, spec.segment_size)
    shuffled = list(segs)
    spec.rng.shuffle(shuffled)
    return _packets(spec, shuffled)


def _tcp_dup(spec: AttackSpec) -> list[TimedPacket]:
    segs = even_segments(spec.payload, spec.segment_size)
    doubled: list[Seg] = []
    for seg in segs:
        doubled.append(seg)
        doubled.append(replace(seg, fin=False) if seg.fin else seg)
    return _packets(spec, doubled)


def _tcp_overlap_new_wins(spec: AttackSpec) -> list[TimedPacket]:
    """Garbage mid-stream first, then the real data engulfing it.

    Victims whose policy favours a new segment that starts earlier
    (BSD, LAST, WINDOWS) apply the real bytes; an IPS that keeps the
    first copy reconstructs garbage.
    """
    payload = spec.payload
    size = spec.segment_size
    segs: list[Seg] = []
    for offset in range(0, len(payload), size):
        chunk = payload[offset : offset + size]
        if len(chunk) > 16:
            inner = offset + 8
            garbage = bytes([GARBAGE_BYTE]) * (len(chunk) - 8)
            segs.append(Seg(offset=inner, data=garbage))
        segs.append(Seg(offset=offset, data=chunk))
    if segs:
        segs[-1] = replace(segs[-1], fin=True)
    return _packets(spec, segs)


def _tcp_overlap_old_wins(spec: AttackSpec) -> list[TimedPacket]:
    """Real data first, then garbage rewrites while it is still buffered.

    Each chunk is sent with its first byte withheld, so the real bytes sit
    in the reassembly buffer; a garbage copy then overlaps them, and only
    afterwards does the withheld byte release delivery.  Victims keeping
    the first copy (FIRST, LINUX) read the attack; an observer whose
    policy lets the rewrite win reconstructs garbage.
    """
    segs = even_segments(spec.payload, spec.segment_size)
    out: list[Seg] = []
    for seg in segs:
        if len(seg.data) <= 1:
            out.append(seg)
            continue
        out.append(replace(seg, offset=seg.offset + 1, data=seg.data[1:]))
        out.append(
            Seg(offset=seg.offset + 1, data=bytes([GARBAGE_BYTE]) * (len(seg.data) - 1))
        )
        out.append(Seg(offset=seg.offset, data=seg.data[:1]))
    return _packets(spec, out)


def _ttl_chaff(spec: AttackSpec) -> list[TimedPacket]:
    """Interleave low-TTL garbage that dies between the IPS and the host."""
    segs = even_segments(spec.payload, spec.segment_size)
    out: list[Seg] = []
    for seg in segs:
        if seg.data:
            out.append(
                Seg(
                    offset=seg.offset,
                    data=bytes([GARBAGE_BYTE]) * len(seg.data),
                    ttl=2,
                )
            )
        out.append(seg)
    return _packets(spec, out)


def _stealth_large_segments(spec: AttackSpec) -> list[TimedPacket]:
    """Threshold-compliant segmentation cutting the signature in two.

    The smartest in-order attacker: every segment is large (>= 2p for any
    reasonable p), in order, non-overlapping -- it evades the anomaly
    monitor entirely and splits the signature across a packet boundary,
    defeating whole-string per-packet matching.  The detection theorem
    says at least one *piece* still lands intact in some packet.
    """
    payload = spec.payload
    size = max(spec.segment_size, 64)
    if spec.signature_span is not None:
        start, length = spec.signature_span
        cut = start + length // 2
    else:
        cut = size // 2 + spec.rng.randrange(8)
    bounds = sorted({0, max(1, cut - size), cut, min(len(payload), cut + size)})
    while bounds[-1] < len(payload):
        bounds.append(min(bounds[-1] + size, len(payload)))
    segs = [
        Seg(offset=a, data=payload[a:b]) for a, b in zip(bounds, bounds[1:]) if b > a
    ]
    segs[-1] = replace(segs[-1], fin=True)
    return _packets(spec, segs)


# -- IP-level strategies ------------------------------------------------------


def _fragment_packets(
    packets: list[TimedPacket], mtu: int, *, shuffle: random.Random | None = None
) -> list[TimedPacket]:
    out: list[TimedPacket] = []
    for packet in packets:
        if packet.ip.total_length <= mtu or packet.ip.dont_fragment:
            out.append(packet)
            continue
        frags = fragment(packet.ip, mtu)
        if shuffle is not None:
            shuffle.shuffle(frags)
        out.extend(TimedPacket(packet.timestamp, frag) for frag in frags)
    return out


def _ip_frag(mtu: int, *, reorder: bool = False) -> Builder:
    def build(spec: AttackSpec) -> list[TimedPacket]:
        base = _packets(spec, even_segments(spec.payload, spec.segment_size))
        return _fragment_packets(base, mtu, shuffle=spec.rng if reorder else None)

    return build


def _ip_frag_overlap(spec: AttackSpec) -> list[TimedPacket]:
    """Fragment, then append garbage duplicates of interior fragments.

    The duplicates arrive second, so a FIRST-policy victim keeps the real
    bytes while a LAST-policy IPS reconstructs garbage.
    """
    base = _packets(spec, even_segments(spec.payload, spec.segment_size))
    fragmented = _fragment_packets(base, 256)
    out: list[TimedPacket] = []
    for packet in fragmented:
        out.append(packet)
        ip = packet.ip
        if ip.is_fragment and ip.more_fragments:
            garbage = ip.copy(payload=bytes([GARBAGE_BYTE]) * len(ip.payload))
            out.append(TimedPacket(packet.timestamp, garbage))
    return out


# -- catalog -------------------------------------------------------------------

STRATEGIES: dict[str, EvasionStrategy] = {
    strategy.name: strategy
    for strategy in [
        EvasionStrategy(
            name="plain",
            description="single large segments, no evasion (control row)",
            build=_plain,
            evades_naive=False,
        ),
        EvasionStrategy(
            name="mss_segments",
            description="ordinary MSS-sized segmentation (control row)",
            build=_mss_segments,
            evades_naive=False,
        ),
        EvasionStrategy(
            name="tcp_seg_1",
            description="fragroute tcp_seg 1: one payload byte per segment",
            build=_tcp_seg(1),
        ),
        EvasionStrategy(
            name="tcp_seg_8",
            description="fragroute tcp_seg 8: eight payload bytes per segment",
            build=_tcp_seg(8),
        ),
        EvasionStrategy(
            name="tcp_reorder",
            description="segments transmitted in random order",
            build=_tcp_reorder,
            evades_naive=False,  # each packet still carries contiguous data
        ),
        EvasionStrategy(
            name="tcp_dup",
            description="every segment transmitted twice (consistent copies)",
            build=_tcp_dup,
            evades_naive=False,
        ),
        EvasionStrategy(
            name="tcp_overlap_new",
            description="garbage first, real data overlaps it (new-wins hosts)",
            build=_tcp_overlap_new_wins,
            victim_policy=OverlapPolicy.BSD,
            evades_naive=False,  # the real copy crosses the wire whole
        ),
        EvasionStrategy(
            name="tcp_overlap_old",
            description="real data first, garbage rewrites it (first-wins hosts)",
            build=_tcp_overlap_old_wins,
            victim_policy=OverlapPolicy.FIRST,
            evades_naive=False,
        ),
        EvasionStrategy(
            name="ttl_chaff",
            description="low-TTL garbage segments die before the host",
            build=_ttl_chaff,
            victim_policy=OverlapPolicy.FIRST,
            victim_hops=4,
            evades_naive=False,
        ),
        EvasionStrategy(
            name="stealth_segments",
            description="large in-order segments cutting the signature in two",
            build=_stealth_large_segments,
        ),
        EvasionStrategy(
            name="ip_frag_8",
            description="fragroute ip_frag 8: 8-byte IP fragments",
            build=_ip_frag(28),
        ),
        EvasionStrategy(
            name="ip_frag_16",
            description="16-byte IP fragments",
            build=_ip_frag(36),
        ),
        EvasionStrategy(
            name="ip_frag_reorder",
            description="IP fragments transmitted in random order",
            build=_ip_frag(256, reorder=True),
        ),
        EvasionStrategy(
            name="ip_frag_overlap",
            description="garbage duplicate fragments after the real ones",
            build=_ip_frag_overlap,
            victim_policy=OverlapPolicy.FIRST,
        ),
    ]
}


def build_attack(
    name: str,
    payload: bytes,
    *,
    seed: int = 7,
    signature_span: tuple[int, int] | None = None,
    segment_size: int = 512,
    **conn,
) -> list[TimedPacket]:
    """Convenience: build one catalog attack against a payload."""
    strategy = STRATEGIES[name]
    spec = AttackSpec(
        payload=payload,
        rng=random.Random(seed),
        conn=conn,
        segment_size=segment_size,
        signature_span=signature_span,
    )
    return strategy.build(spec)
