"""SD102: the merge/digest path must be deterministic.

Invariant (PR 3): serial and parallel runs of the same trace produce
bit-for-bit identical merged reports, asserted via a SHA-256
equivalence digest.  Anything order- or time-dependent feeding that
digest silently breaks the contract on some machine, some day.  In the
scoped modules (the alert-merge/digest code in ``runtime/report.py``
and the registry merge it delegates to) this rule forbids:

- wall-clock reads (``time.time``, ``datetime.now``, ...) -- merged
  reports must derive times from *packet* timestamps only;
- any use of the ``secrets``/``uuid`` modules, and any use of
  ``random`` *except* an explicitly seeded ``random.Random(seed)``
  instance (the benchmark idiom: same seed, same stream, every run --
  entropy inside the seed expression is flagged at its own call);
- iterating a ``set``/``frozenset`` value, a set literal or
  comprehension, or ``.keys()``/``.values()``/``.items()`` of a freshly
  built ``dict(...)``\\ -like call, without wrapping in ``sorted(...)``.
  (Plain attribute/name dict iteration is allowed: insertion order is
  deterministic per shard; *set* order is seed-dependent.)
"""

from __future__ import annotations

import ast

from ..astutil import ImportMap, resolve_call_path
from ..engine import FileContext, Rule, register

__all__ = ["DeterminismRule"]

FORBIDDEN_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
    }
)

FORBIDDEN_MODULES = ("random", "secrets", "uuid")

# Importing these is already a smell; ``random`` alone is import-clean
# because the seeded-instance idiom below is allowed.
FORBIDDEN_IMPORTS = ("secrets", "uuid")


def _is_seeded_random(node: ast.Call, path: str) -> bool:
    """``random.Random(seed)`` with an explicit seed.

    Deterministic as a function of the seed expression; an entropy
    source *inside* the seed (``random.Random(time.time())``) is still
    flagged at its own call node by this same rule.  Only the zero-arg
    form -- OS entropy -- stays forbidden.
    """
    return path == "random.Random" and len(node.args) == 1 and not node.keywords


def _set_iteration_problem(expr: ast.expr) -> str | None:
    """Why iterating ``expr`` is nondeterministic, or None if it is fine."""
    if isinstance(expr, ast.Set):
        return "a set literal"
    if isinstance(expr, ast.SetComp):
        return "a set comprehension"
    if isinstance(expr, ast.Call):
        if isinstance(expr.func, ast.Name) and expr.func.id in (
            "set",
            "frozenset",
        ):
            return f"{expr.func.id}(...)"
        if isinstance(expr.func, ast.Attribute) and expr.func.attr == "keys":
            # d.keys() order is insertion order -- deterministic -- but
            # in merge code the dict is routinely built from another
            # unordered source; require sorted() for the digest path.
            return ".keys()"
    return None


@register
class DeterminismRule(Rule):
    id = "SD102"
    title = "nondeterminism in the alert-merge/digest path"
    default_paths = (
        "*/repro/runtime/report.py",
        "*/repro/telemetry/registry.py",
    )

    def check(self, ctx: FileContext) -> None:
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._check_import(ctx, node)
            elif isinstance(node, ast.Call):
                self._check_call(ctx, node, imports)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_iter(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    self._check_iter(ctx, generator.iter)

    def _check_import(
        self, ctx: FileContext, node: ast.Import | ast.ImportFrom
    ) -> None:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:
            modules = [(node.module or "").lstrip(".")]
        for module in modules:
            root = module.split(".")[0]
            if root in FORBIDDEN_IMPORTS:
                ctx.report(
                    self,
                    node,
                    f"import of {root!r} in a determinism-critical module; "
                    "the merge/digest path must not depend on entropy "
                    "(PR 3's serial==parallel equivalence digest)",
                )

    def _check_call(
        self, ctx: FileContext, node: ast.Call, imports: ImportMap
    ) -> None:
        path = resolve_call_path(node, imports)
        if path is None:
            return
        root = path.split(".")[0]
        if path in FORBIDDEN_CALLS or root in FORBIDDEN_MODULES:
            if _is_seeded_random(node, path):
                return
            hint = (
                "; seed an instance -- random.Random(<literal>) -- if you "
                "need a reproducible stream"
                if root == "random"
                else ""
            )
            ctx.report(
                self,
                node,
                f"call to {path}() in a determinism-critical module; merged "
                "reports must derive only from packet timestamps and shard "
                f"content (PR 3's serial==parallel equivalence digest){hint}",
            )

    def _check_iter(self, ctx: FileContext, iter_expr: ast.expr) -> None:
        problem = _set_iteration_problem(iter_expr)
        if problem is not None:
            ctx.report(
                self,
                iter_expr,
                f"iteration over {problem} in a determinism-critical module; "
                "wrap in sorted(...) so the merge order (and the SHA-256 "
                "digest built from it) is identical on every run",
            )
