"""The paper's central claim, tested adversarially end to end.

Hypothesis plays the attacker: it composes arbitrary segmentations,
reorderings, duplications, inconsistent overlaps, low-TTL chaff, and IP
fragmentation -- any mixture -- and delivers the result both to an
emulated victim and to the Split-Detect engine.  Whenever the victim's
application actually receives the signature bytes, the engine must have
raised an alert (signature, partial signature, or ambiguity).

This covers the probation optimization too: if handing flows back to the
fast path ever opened a detection hole, this test is built to find it.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AlertKind, SplitDetectIPS
from repro.evasion import Seg, Victim, plan_to_packets
from repro.packet import TimedPacket, fragment
from repro.signatures import RuleSet, Signature, SplitPolicy
from repro.streams import OverlapPolicy

SIGNATURE = b"ZQv7#EVIL-PAYLOAD\x90\x90\x90\x90:exec(/bin/sh)!K"  # 38 bytes, no '.'
SID = 7001


def ruleset() -> RuleSet:
    rules = RuleSet()
    rules.add(Signature(sid=SID, pattern=SIGNATURE, msg="e2e target"))
    return rules


def detected(alerts) -> bool:
    return any(
        (a.kind in (AlertKind.SIGNATURE, AlertKind.PARTIAL_SIGNATURE) and a.sid == SID)
        or a.kind is AlertKind.AMBIGUITY
        for a in alerts
    )


@st.composite
def adversarial_delivery(draw):
    """A random attack: payload with embedded signature + delivery script."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**31)))
    filler_before = draw(st.integers(min_value=0, max_value=900))
    filler_after = draw(st.integers(min_value=0, max_value=900))
    filler_byte = b"x"
    payload = (
        filler_byte * filler_before + SIGNATURE + filler_byte * filler_after
    )
    # Random segmentation: cut points anywhere, including inside the signature.
    n_cuts = draw(st.integers(min_value=0, max_value=24))
    cuts = sorted(
        {draw(st.integers(min_value=1, max_value=len(payload) - 1)) for _ in range(n_cuts)}
    )
    bounds = [0] + cuts + [len(payload)]
    segs = [
        Seg(offset=a, data=payload[a:b], fin=(b == len(payload)))
        for a, b in zip(bounds, bounds[1:])
    ]
    # Mutations.
    if draw(st.booleans()):  # shuffle
        rng.shuffle(segs)
    if draw(st.booleans()):  # duplicate some segments (consistent copies)
        extras = [seg for seg in segs if rng.random() < 0.3]
        for seg in extras:
            segs.insert(rng.randrange(len(segs) + 1), Seg(seg.offset, seg.data))
    chaff = draw(st.sampled_from(["none", "ttl", "overlap_after"]))
    if chaff == "ttl":  # insertion chaff the victim never sees
        garbage = [
            Seg(seg.offset, b"\x2e" * len(seg.data), ttl=1)
            for seg in segs
            if seg.data and rng.random() < 0.5
        ]
        for seg in garbage:
            segs.insert(rng.randrange(len(segs) + 1), seg)
    victim_hops = 3 if chaff == "ttl" else 0
    packets = plan_to_packets(segs, gap=0.0001)
    if chaff == "overlap_after":
        # Garbage rewrites of delivered data: the victim (FIRST) keeps the
        # original bytes, a LAST-policy observer would be blinded.
        rewritten = []
        for packet in packets:
            rewritten.append(packet)
            ip = packet.ip
            if ip.payload and rng.random() < 0.3 and len(ip.payload) > 40:
                from repro.packet import TcpSegment, build_tcp_packet, decode_tcp

                seg = decode_tcp(ip)
                if seg.payload and not seg.syn:
                    garbage_seg = seg.copy(payload=b"\x2e" * len(seg.payload))
                    rewritten.append(
                        TimedPacket(
                            packet.timestamp + 0.00001,
                            build_tcp_packet(ip.src, ip.dst, garbage_seg),
                        )
                    )
        packets = rewritten
    if draw(st.booleans()):  # fragment a random subset of packets
        mtu = draw(st.sampled_from([36, 68, 256]))
        fragged = []
        for packet in packets:
            if packet.ip.payload and rng.random() < 0.4 and packet.ip.total_length > mtu:
                ip = packet.ip.copy(dont_fragment=False)
                frags = fragment(ip, mtu)
                if rng.random() < 0.5:
                    rng.shuffle(frags)
                fragged.extend(TimedPacket(packet.timestamp, f) for f in frags)
            else:
                fragged.append(packet)
        packets = fragged
    return packets, victim_hops


@given(case=adversarial_delivery(), probation=st.sampled_from([0, 2, 8]))
@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_no_delivered_signature_goes_undetected(case, probation):
    packets, victim_hops = case
    victim = Victim(policy=OverlapPolicy.FIRST, hops_behind_ips=victim_hops)
    victim.deliver_all(packets)
    if not victim.received(SIGNATURE):
        return  # the mutation corrupted the attack; nothing to assert
    ips = SplitDetectIPS(
        ruleset(),
        split_policy=SplitPolicy(piece_length=8),
        probation_packets=probation,
    )
    alerts = []
    for packet in packets:
        alerts.extend(ips.process(packet))
    assert detected(alerts), "victim received the signature but no alert was raised"


@given(case=adversarial_delivery())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_conventional_baseline_also_detects(case):
    from repro.core import ConventionalIPS

    packets, victim_hops = case
    victim = Victim(policy=OverlapPolicy.FIRST, hops_behind_ips=victim_hops)
    victim.deliver_all(packets)
    if not victim.received(SIGNATURE):
        return
    ips = ConventionalIPS(ruleset())
    alerts = []
    for packet in packets:
        alerts.extend(ips.process(packet))
    assert detected(alerts)
