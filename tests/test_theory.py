"""Executable proof of the detection theorem, including tightness.

These tests are the reproduction of the paper's central formal claim:
"under certain assumptions this scheme can detect all byte-string
evasions".  Soundness is checked by adversarial search and random
sampling; necessity of each assumption is demonstrated by constructing
counterexamples when the assumption is dropped.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signatures import Piece, Signature, SplitPolicy, SplitSignature, split_signature
from repro.theory import (
    boundaries_of_sizes,
    detection_holds,
    find_evading_boundaries,
    intact_pieces,
    max_boundaries_inside,
    segmentation_respects_threshold,
)


def make_split(length, p=8):
    pattern = bytes((i * 37 + 11) % 256 for i in range(length))
    return split_signature(Signature(sid=1, pattern=pattern), SplitPolicy(piece_length=p))


def two_piece_split(length, p):
    """A deliberately unsound k=2 split, bypassing the k>=3 validation."""
    sig = Signature(sid=2, pattern=bytes(range(256))[:length] * (length // 256 + 1))
    sig = Signature(sid=2, pattern=sig.pattern[:length])
    half = length // 2
    pieces = (
        Piece(signature=sig, index=0, offset=0, data=sig.pattern[:half]),
        Piece(signature=sig, index=1, offset=half, data=sig.pattern[half:]),
    )
    split = SplitSignature.__new__(SplitSignature)
    object.__setattr__(split, "signature", sig)
    object.__setattr__(split, "pieces", pieces)
    object.__setattr__(split, "piece_length", p)
    return split


class TestPrimitives:
    def test_boundaries_of_sizes(self):
        assert boundaries_of_sizes([3, 4, 5]) == [3, 7]
        assert boundaries_of_sizes([10]) == []

    def test_max_boundaries_inside(self):
        assert max_boundaries_inside(2, 16) == 0
        assert max_boundaries_inside(24, 16) == 2
        assert max_boundaries_inside(100, 16) == 7

    def test_intact_pieces(self):
        split = make_split(24, p=8)  # pieces [0,8) [8,16) [16,24)
        assert intact_pieces(split, boundaries=[], signature_start=0) == [0, 1, 2]
        assert intact_pieces(split, boundaries=[4], signature_start=0) == [1, 2]
        assert intact_pieces(split, boundaries=[8], signature_start=0) == [0, 1, 2]
        assert intact_pieces(split, boundaries=[104], signature_start=100) == [1, 2]

    def test_threshold_predicate(self):
        assert segmentation_respects_threshold([16, 20, 3], threshold=16)
        assert not segmentation_respects_threshold([16, 3, 20], threshold=16)
        assert not segmentation_respects_threshold([16, 20, 3], 16, final_exempt=False)


class TestSoundness:
    @pytest.mark.parametrize("length", [24, 25, 31, 32, 40, 64, 100, 200, 1460])
    @pytest.mark.parametrize("p", [4, 8, 12])
    def test_no_evading_boundaries_exist(self, length, p):
        if length < 3 * p:
            pytest.skip("below minimum splittable length for this p")
        split = make_split(length, p)
        assert find_evading_boundaries(split) is None

    def test_adversarial_search_respects_gap(self):
        # With a tiny gap requirement (no small-packet rule) evasion is easy.
        split = make_split(24, p=8)
        cuts = find_evading_boundaries(split, min_gap=1)
        assert cuts is not None
        assert intact_pieces(split, cuts) == []

    @given(
        length=st.integers(min_value=24, max_value=400),
        p=st.sampled_from([4, 6, 8, 10, 12]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=300)
    def test_random_compliant_segmentations_always_detected(self, length, p, seed):
        if length < 3 * p:
            return
        split = make_split(length, p)
        threshold = split.small_packet_threshold
        rng = random.Random(seed)
        # Random placement of the signature in a larger stream, random
        # compliant packet sizes (final packet exempt from the threshold).
        prefix = rng.randrange(0, 200)
        suffix = rng.randrange(0, 200)
        total = prefix + length + suffix
        sizes = []
        remaining = total
        while remaining > 0:
            size = rng.randrange(threshold, 3 * threshold)
            size = min(size, remaining)
            sizes.append(size)
            remaining -= size
        # The last packet may be small; that is allowed.
        assert segmentation_respects_threshold(sizes, threshold)
        assert detection_holds(split, sizes, signature_start=prefix)


class TestTightness:
    """Dropping any assumption admits a counterexample."""

    def test_k2_is_evadable(self):
        # Two pieces can both be cut when the signature is long enough.
        split = two_piece_split(40, p=8)
        cuts = find_evading_boundaries(split, min_gap=16)
        assert cuts is not None
        assert intact_pieces(split, cuts) == []
        # And the cuts correspond to a real threshold-compliant delivery:
        # packets [0..c1), [c1..c2), [c2..end) padded by large outer packets.
        c1, c2 = cuts
        sizes = [c1 + 100, c2 - c1, 100]
        assert sizes[1] >= 16
        assert not detection_holds(split, sizes, signature_start=100)

    def test_small_packets_evade_k3(self):
        # Without the small-packet rule, 1-byte segments cut everything.
        split = make_split(24, p=8)
        sizes = [1] * 24
        assert not detection_holds(split, sizes, signature_start=0)
        assert not segmentation_respects_threshold(sizes, split.small_packet_threshold)

    def test_threshold_cannot_be_weakened_to_p(self):
        # B = p (instead of 2p) admits evasion for some splits.
        split = make_split(32, p=8)  # k=4, pieces of 8
        cuts = find_evading_boundaries(split, min_gap=8)
        assert cuts is not None

    def test_theorem_bound_is_attained(self):
        # b = floor((L-2)/B) + 1 boundaries genuinely fit inside.
        length, p = 100, 8
        bound = max_boundaries_inside(length, 2 * p)
        cuts = [1 + i * 2 * p for i in range(bound)]
        assert all(0 < c < length for c in cuts)
        assert all(b - a >= 2 * p for a, b in zip(cuts, cuts[1:]))


class TestEndToEndCounting:
    @given(
        length=st.integers(min_value=24, max_value=300),
        p=st.sampled_from([4, 8]),
    )
    @settings(max_examples=100)
    def test_intact_count_meets_theorem_lower_bound(self, length, p):
        if length < 3 * p:
            return
        split = make_split(length, p)
        b = max_boundaries_inside(length, split.small_packet_threshold)
        cuts = find_evading_boundaries(split)
        assert cuts is None
        # Even the adversary's best effort leaves >= k - b pieces intact;
        # verify with the greedy adversary capped at the theorem's b.
        greedy = [1 + i * split.small_packet_threshold for i in range(b)]
        greedy = [c for c in greedy if c < length - 1]
        survivors = intact_pieces(split, greedy)
        assert len(survivors) >= split.k - b
        assert survivors  # and at least one survives
