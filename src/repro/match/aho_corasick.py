"""Aho-Corasick multi-pattern matcher with resumable (streaming) state.

This is the matching engine both IPS variants use: the conventional IPS
runs it over reassembled streams (state carried across segments), and the
Split-Detect fast path runs it over raw packet payloads (state reset per
packet, since pieces must appear wholly inside one packet).

The automaton is built once from a list of byte patterns and is immutable
afterwards; scanning never allocates per byte.  ``scan`` returns match
tuples ``(pattern_id, end_offset)`` where ``end_offset`` is the offset
just past the last matched byte within the scanned buffer.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

ROOT_STATE = 0


class AhoCorasick:
    """Immutable Aho-Corasick automaton over byte patterns.

    Parameters
    ----------
    patterns:
        The byte strings to search for.  Pattern ids are their indices.
        Empty patterns are rejected; duplicate patterns share matches
        (each id is reported).
    """

    def __init__(self, patterns: Sequence[bytes]) -> None:
        self.patterns: tuple[bytes, ...] = tuple(bytes(p) for p in patterns)
        for i, pattern in enumerate(self.patterns):
            if not pattern:
                raise ValueError(f"pattern {i} is empty")
        # Trie construction: transitions as per-state dicts.
        self._goto: list[dict[int, int]] = [{}]
        self._fail: list[int] = [ROOT_STATE]
        self._output: list[tuple[int, ...]] = [()]
        for pattern_id, pattern in enumerate(self.patterns):
            state = ROOT_STATE
            for byte in pattern:
                nxt = self._goto[state].get(byte)
                if nxt is None:
                    nxt = len(self._goto)
                    self._goto[state][byte] = nxt
                    self._goto.append({})
                    self._fail.append(ROOT_STATE)
                    self._output.append(())
                state = nxt
            self._output[state] = self._output[state] + (pattern_id,)
        self._build_failure_links()
        self._depth = self._compute_depths()

    def _build_failure_links(self) -> None:
        queue: deque[int] = deque()
        for state in self._goto[ROOT_STATE].values():
            self._fail[state] = ROOT_STATE
            queue.append(state)
        while queue:
            state = queue.popleft()
            for byte, nxt in self._goto[state].items():
                queue.append(nxt)
                fallback = self._fail[state]
                while fallback != ROOT_STATE and byte not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(byte, ROOT_STATE)
                if self._fail[nxt] == nxt:  # root self-loop guard
                    self._fail[nxt] = ROOT_STATE
                self._output[nxt] = self._output[nxt] + self._output[self._fail[nxt]]

    def _compute_depths(self) -> list[int]:
        depth = [0] * len(self._goto)
        queue: deque[int] = deque([ROOT_STATE])
        while queue:
            state = queue.popleft()
            for nxt in self._goto[state].values():
                depth[nxt] = depth[state] + 1
                queue.append(nxt)
        return depth

    # -- public API ---------------------------------------------------------

    @property
    def state_count(self) -> int:
        """Number of automaton states (trie nodes)."""
        return len(self._goto)

    def state_depth(self, state: int) -> int:
        """Longest pattern prefix the state represents (streaming carryover)."""
        return self._depth[state]

    def scan(
        self, data: bytes, state: int = ROOT_STATE
    ) -> tuple[int, list[tuple[int, int]]]:
        """Scan ``data`` starting from ``state``.

        Returns ``(final_state, matches)``; feed the final state back in to
        continue matching across buffer boundaries (streaming mode), or
        discard it for per-packet matching.
        """
        goto = self._goto
        fail = self._fail
        output = self._output
        matches: list[tuple[int, int]] = []
        for offset, byte in enumerate(data):
            nxt = goto[state].get(byte)
            while nxt is None and state != ROOT_STATE:
                state = fail[state]
                nxt = goto[state].get(byte)
            state = nxt if nxt is not None else ROOT_STATE
            if output[state]:
                end = offset + 1
                matches.extend((pid, end) for pid in output[state])
        return state, matches

    def contains_match(self, data: bytes) -> bool:
        """True when any pattern occurs in ``data`` (early exit)."""
        goto = self._goto
        fail = self._fail
        output = self._output
        state = ROOT_STATE
        for byte in data:
            nxt = goto[state].get(byte)
            while nxt is None and state != ROOT_STATE:
                state = fail[state]
                nxt = goto[state].get(byte)
            state = nxt if nxt is not None else ROOT_STATE
            if output[state]:
                return True
        return False

    def find_all(self, data: bytes) -> list[tuple[int, int]]:
        """All matches in a self-contained buffer as (pattern_id, end_offset)."""
        _, matches = self.scan(data)
        return matches
