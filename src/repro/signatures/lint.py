"""Rule-set linting: will these signatures work well under Split-Detect?

A rule author (or an operator importing a vendor feed) wants to know
before deployment: which rules cannot be split (and thus fall back to
best-effort whole matching), which produce pieces so common they will
divert benign traffic, and which are redundant.  ``lint_ruleset`` returns
structured findings; the CLI renders them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .model import RuleSet, Signature
from .ngram import ByteFrequencyModel
from .splitter import SplitPolicy, UnsplittableSignatureError, split_signature


class LintLevel(enum.Enum):
    """Severity of a lint finding."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class LintFinding:
    """One issue with one rule."""

    level: LintLevel
    sid: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.level.value}] sid {self.sid} {self.code}: {self.message}"


#: Expected benign occurrences per scanned MiB above which a piece is
#: considered noisy enough to flag.
NOISY_PIECE_THRESHOLD = 0.5


def lint_ruleset(
    rules: RuleSet,
    policy: SplitPolicy | None = None,
    model: ByteFrequencyModel | None = None,
) -> list[LintFinding]:
    """Check every rule; returns findings ordered by (severity, sid)."""
    policy = policy or SplitPolicy()
    findings: list[LintFinding] = []
    seen_sids: dict[int, Signature] = {}
    seen_patterns: dict[tuple, int] = {}
    for signature in rules:
        if signature.sid in seen_sids:
            findings.append(
                LintFinding(
                    LintLevel.ERROR,
                    signature.sid,
                    "duplicate-sid",
                    "sid already used by another rule",
                )
            )
        seen_sids[signature.sid] = signature
        fingerprint = (
            signature.pattern,
            signature.dst_port,
            signature.protocol,
            signature.nocase,
            signature.extra_contents,
        )
        if fingerprint in seen_patterns:
            findings.append(
                LintFinding(
                    LintLevel.WARNING,
                    signature.sid,
                    "duplicate-pattern",
                    f"identical to sid {seen_patterns[fingerprint]}",
                )
            )
        else:
            seen_patterns[fingerprint] = signature.sid
        if signature.protocol == "udp":
            if len(signature.pattern) < 4:
                findings.append(
                    LintFinding(
                        LintLevel.WARNING,
                        signature.sid,
                        "short-udp-pattern",
                        f"{len(signature.pattern)}-byte UDP pattern will be noisy",
                    )
                )
            continue
        try:
            split = split_signature(signature, policy, model)
        except UnsplittableSignatureError:
            findings.append(
                LintFinding(
                    LintLevel.WARNING,
                    signature.sid,
                    "unsplittable",
                    f"{len(signature.pattern)}-byte pattern cannot form 3 pieces; "
                    "falls back to best-effort whole-packet matching",
                )
            )
            continue
        if model is not None:
            for piece in split.pieces:
                expected = model.expected_matches(piece.data, 2**20)
                if expected > NOISY_PIECE_THRESHOLD:
                    findings.append(
                        LintFinding(
                            LintLevel.INFO,
                            signature.sid,
                            "noisy-piece",
                            f"piece {piece.index} ({piece.data[:16]!r}) expected "
                            f"{expected:.1f} benign hits/MiB; consider "
                            "skip_common_prefix or a longer pattern",
                        )
                    )
    order = {LintLevel.ERROR: 0, LintLevel.WARNING: 1, LintLevel.INFO: 2}
    findings.sort(key=lambda f: (order[f.level], f.sid))
    return findings
