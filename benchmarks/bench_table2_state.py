"""Table 2 -- per-flow state: Split-Detect at ~10% of a conventional IPS.

Runs the same benign trace through both engines, measures peak state and
per-flow footprint, then extrapolates to the standards regime the paper
cites (1M concurrent connections) and reports the provisioned figures
the scalability argument is about.
"""

import sys

from exp_common import benign_trace, bundled_rules, emit
from repro.core import ConventionalIPS, SplitDetectIPS
from repro.metrics import (
    provisioned_conventional_state,
    provisioned_fastpath_state,
    run_conventional,
    run_split_detect,
    state_per_flow,
)


def table_rows() -> list[str]:
    rules = bundled_rules()
    trace = benign_trace(flows=300)

    split_ips = SplitDetectIPS(rules)
    split_report = run_split_detect(split_ips, trace, sample_every=50)
    conv_ips = ConventionalIPS(rules)
    conv_report = run_conventional(conv_ips, trace, sample_every=50)

    # The classic defense (inline normalizer) as a third row: it must hold
    # a shadow copy of every stream byte per direction.
    from repro.streams import ActiveNormalizer

    normalizer = ActiveNormalizer()
    norm_peak = 0
    for index, packet in enumerate(trace):
        normalizer.process(packet)
        if index % 50 == 0:
            norm_peak = max(norm_peak, normalizer.state_bytes())
    norm_peak = max(norm_peak, normalizer.state_bytes())

    split_per_flow = state_per_flow(split_report)
    conv_per_flow = state_per_flow(conv_report)
    measured_ratio = split_report.peak_state_bytes / max(conv_report.peak_state_bytes, 1)
    prov_fast = provisioned_fastpath_state()
    prov_conv = provisioned_conventional_state()
    return [
        f"{'engine':<14} {'peak state B':>13} {'peak flows':>10} {'B/flow':>8}",
        f"{'split-detect':<14} {split_report.peak_state_bytes:>13,} "
        f"{split_report.peak_flows:>10} {split_per_flow:>8.0f}",
        f"{'conventional':<14} {conv_report.peak_state_bytes:>13,} "
        f"{conv_report.peak_flows:>10} {conv_per_flow:>8.0f}",
        f"{'normalizer':<14} {norm_peak:>13,} "
        f"{normalizer.active_flows:>10} "
        f"{norm_peak / max(normalizer.active_flows, 1):>8.0f}   (inline classic defense)",
        "",
        f"measured state ratio (split/conventional): {measured_ratio:.1%}",
        "",
        "provisioned for 1,000,000 connections (the paper's standards point):",
        f"  split-detect fast path: {prov_fast:>14,} bytes ({prov_fast / 2**20:,.0f} MiB)",
        f"  conventional IPS:       {prov_conv:>14,} bytes ({prov_conv / 2**30:,.1f} GiB)",
        f"  provisioned ratio:      {prov_fast / prov_conv:.1%}  (paper claims ~10%)",
    ]


def test_table2_state_comparison(benchmark, capfd):
    rules = bundled_rules()
    trace = benign_trace(flows=300)

    def run():
        ips = SplitDetectIPS(rules)
        return run_split_detect(ips, trace, sample_every=50)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.peak_state_bytes > 0
    rows = table_rows()
    emit("table2_state", rows, capfd)
    # The headline assertion: provisioned fast-path state is <= 10% of a
    # conventional IPS's, and the measured ratio is in the same regime.
    assert provisioned_fastpath_state() / provisioned_conventional_state() <= 0.10


if __name__ == "__main__":
    print("\n".join(table_rows()), file=sys.stderr)
