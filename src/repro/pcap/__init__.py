"""Classic libpcap savefile reader/writer (object and columnar)."""

from .columnar import ColumnarPcapReader, numpy_available, read_column_batches
from .format import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    PcapFormatError,
    PcapHeader,
)
from .io import (
    PcapReader,
    PcapWriter,
    read_records,
    read_trace,
    trace_to_bytes,
    write_trace,
)

__all__ = [
    "ColumnarPcapReader",
    "LINKTYPE_ETHERNET",
    "LINKTYPE_RAW_IP",
    "PcapFormatError",
    "PcapHeader",
    "PcapReader",
    "PcapWriter",
    "numpy_available",
    "read_column_batches",
    "read_records",
    "read_trace",
    "trace_to_bytes",
    "write_trace",
]
