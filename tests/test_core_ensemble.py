"""Tests for the policy-ensemble slow path (target-based reassembly)."""

import pytest

from helpers import ATTACK_SIGNATURE, attack_payload, attack_ruleset, signature_span
from repro.core import AlertKind, SplitDetectIPS
from repro.evasion import build_attack
from repro.streams import OverlapPolicy


def run(ips, packets):
    alerts = []
    for packet in packets:
        alerts.extend(ips.process(packet))
    return alerts


def signature_level(alerts, sid=5001):
    return [a for a in alerts if a.sid == sid and a.kind is AlertKind.SIGNATURE]


class TestEnsemble:
    def overlap_attack(self):
        """tcp_overlap_new delivers the real bytes only to new-wins hosts."""
        return build_attack(
            "tcp_overlap_new", attack_payload(), signature_span=signature_span()
        )

    def test_single_policy_sees_only_ambiguity(self):
        # A FIRST-policy slow path reconstructs the garbage copy, so it can
        # flag the inconsistency but never name the signature.
        ips = SplitDetectIPS(attack_ruleset(), overlap_policy=OverlapPolicy.FIRST)
        alerts = run(ips, self.overlap_attack())
        assert any(a.kind is AlertKind.AMBIGUITY for a in alerts)
        assert not signature_level(alerts)

    def test_ensemble_names_the_signature(self):
        ips = SplitDetectIPS(
            attack_ruleset(),
            overlap_policy=OverlapPolicy.FIRST,
            ensemble_policies=(OverlapPolicy.LAST,),
        )
        alerts = run(ips, self.overlap_attack())
        assert signature_level(alerts)

    def test_ensemble_deduplicates_alerts(self):
        # A plain attack is confirmed identically by every policy; the
        # engine must not multiply the alert.
        ips = SplitDetectIPS(
            attack_ruleset(),
            ensemble_policies=(OverlapPolicy.FIRST, OverlapPolicy.LAST),
        )
        alerts = run(ips, build_attack("tcp_seg_8", attack_payload()))
        assert len(signature_level(alerts)) == 1

    def test_primary_policy_not_duplicated_in_ensemble(self):
        ips = SplitDetectIPS(
            attack_ruleset(),
            overlap_policy=OverlapPolicy.BSD,
            ensemble_policies=(OverlapPolicy.BSD, OverlapPolicy.LAST),
        )
        assert len(ips.ensemble_paths) == 1

    def test_state_accounting_includes_replicas(self):
        packets = build_attack("tcp_seg_8", attack_payload())
        single = SplitDetectIPS(attack_ruleset())
        run(single, packets[:-1])
        ensembled = SplitDetectIPS(
            attack_ruleset(), ensemble_policies=(OverlapPolicy.FIRST, OverlapPolicy.LAST)
        )
        run(ensembled, packets[:-1])
        assert ensembled.state_bytes() > single.state_bytes()

    def test_probation_releases_ensemble_state_too(self):
        from repro.traffic import TrafficProfile, generate_trace

        ips = SplitDetectIPS(
            attack_ruleset(),
            ensemble_policies=(OverlapPolicy.LAST,),
            probation_packets=2,
        )
        trace = generate_trace(TrafficProfile(flows=60, udp_fraction=0), seed=2006)
        run(ips, trace)
        if ips.reinstated_flows:
            live = ips.slow_path.normalizer.live_flows()
            for path in ips.ensemble_paths:
                assert path.normalizer.live_flows() <= live | set()
