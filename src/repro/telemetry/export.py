"""Exporters: Prometheus text format and JSON for a telemetry registry.

Both exporters read only :meth:`TelemetryRegistry.snapshot`-level state,
so a snapshot taken at one point in a run serializes identically later.
The Prometheus output follows the text exposition format (``# HELP`` /
``# TYPE`` headers, ``_bucket{le=...}`` / ``_sum`` / ``_count`` histogram
series); the event journal is JSON-only, Prometheus has no event type.
"""

from __future__ import annotations

import json
from pathlib import Path

from .profile import stage_profile
from .registry import Counter, Gauge, Histogram, NullRegistry, TelemetryRegistry


def to_json(registry: TelemetryRegistry | NullRegistry, *, indent: int | None = 2) -> str:
    """The registry snapshot as a JSON document.

    When the registry holds stage-latency data, a derived ``profile``
    section (p50/p90/p99/max per stage + slowest flows) rides along.
    """
    snapshot = registry.snapshot()
    profile = stage_profile(registry)
    if profile:
        snapshot["profile"] = profile
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # bool is an int subtype; never emit True
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in merged.items()
    )
    return "{" + body + "}"


def _edge_text(edge: float) -> str:
    return str(int(edge)) if float(edge).is_integer() else repr(edge)


def to_prometheus(registry: TelemetryRegistry | NullRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.metrics():
        lines.append(f"# HELP {metric.name} {metric.help or metric.name}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.samples():
                lines.append(
                    f"{metric.name}{_label_text(labels)} {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels, child in metric.samples():
                cumulative = child.cumulative()
                for edge, count in zip(metric.edges, cumulative):
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_label_text(labels, {'le': _edge_text(edge)})} {count}"
                    )
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_label_text(labels, {'le': '+Inf'})} {cumulative[-1]}"
                )
                lines.append(
                    f"{metric.name}_sum{_label_text(labels)} {_format_value(child.sum)}"
                )
                lines.append(
                    f"{metric.name}_count{_label_text(labels)} {child.count}"
                )
    # The journal has no Prometheus event type, but its ring accounting
    # does: without these counters a silently overflowing journal looks
    # healthy on /metrics (``len + dropped == recorded``).
    journal = getattr(registry, "journal", None)
    if registry.enabled and journal is not None:
        lines.append(
            "# HELP repro_telemetry_journal_recorded_total "
            "Structured events recorded by the registry's event journal"
        )
        lines.append("# TYPE repro_telemetry_journal_recorded_total counter")
        lines.append(f"repro_telemetry_journal_recorded_total {journal.recorded}")
        lines.append(
            "# HELP repro_telemetry_journal_dropped_total "
            "Journal events lost to ring overflow (oldest dropped first)"
        )
        lines.append("# TYPE repro_telemetry_journal_dropped_total counter")
        lines.append(f"repro_telemetry_journal_dropped_total {journal.dropped}")
    return "\n".join(lines) + ("\n" if lines else "")


def summarize(
    registry: TelemetryRegistry | NullRegistry,
    *,
    prefix: str = "",
    skip_zero: bool = True,
) -> list[str]:
    """A compact human-readable table of the registry's current values.

    One line per sample: counters and gauges print their value,
    histograms print ``count`` and ``mean``.  Zero-valued samples are
    skipped by default (most label sets never fire in a short run), and
    ``prefix`` filters to one subsystem (e.g. ``"repro_fastpath_"``).
    """
    lines: list[str] = []
    for metric in registry.metrics():
        if prefix and not metric.name.startswith(prefix):
            continue
        if isinstance(metric, (Counter, Gauge)):
            for labels, value in metric.samples():
                if skip_zero and not value:
                    continue
                lines.append(
                    f"{metric.name}{_label_text(labels)} = {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels, child in metric.samples():
                if skip_zero and not child.count:
                    continue
                mean = child.sum / child.count if child.count else 0.0
                lines.append(
                    f"{metric.name}{_label_text(labels)} "
                    f"count={child.count} mean={mean:,.0f}"
                )
    return lines


def write_telemetry(
    registry: TelemetryRegistry | NullRegistry,
    path: str | Path,
    *,
    format: str = "json",
) -> Path:
    """Serialize the registry to ``path`` in the given format.

    ``format`` is ``"json"`` or ``"prometheus"``; the written path is
    returned so callers can report it.
    """
    path = Path(path)
    if format == "json":
        text = to_json(registry) + "\n"
    elif format == "prometheus":
        text = to_prometheus(registry)
    else:
        raise ValueError(f"unknown telemetry format {format!r}")
    path.write_text(text, encoding="utf-8")
    return path
