"""Tests for the synthetic traffic generator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evasion import Victim, build_attack
from repro.packet import IP_PROTO_TCP, decode_tcp, flow_key_of
from repro.streams import OverlapPolicy
from repro.traffic import (
    TrafficProfile,
    benign_payload,
    generate_flow,
    generate_trace,
    inject_attacks,
    merge_streams,
)


class TestPayloads:
    def test_benign_payload_respects_size(self):
        rng = random.Random(1)
        for size in (10, 100, 1000, 20000):
            assert len(benign_payload(rng, size)) == size

    def test_deterministic_in_seed(self):
        a = benign_payload(random.Random(42), 500)
        b = benign_payload(random.Random(42), 500)
        assert a == b

    def test_payload_mixture_varies(self):
        rng = random.Random(3)
        kinds = {benign_payload(rng, 300)[:4] for _ in range(30)}
        assert len(kinds) > 2  # several application protocols appear


class TestFlowGeneration:
    def flow(self, **profile_kw):
        profile = TrafficProfile(**profile_kw)
        return generate_flow(
            random.Random(5),
            profile,
            start_time=10.0,
            client="10.1.1.1",
            server="192.168.1.1",
            client_port=2000,
        )

    def test_flow_is_wire_valid_and_reassembles(self):
        flow = self.flow(reorder_rate=0, retransmit_rate=0, fragment_rate=0, tiny_rate=0)
        victim = Victim(policy=OverlapPolicy.FIRST)
        victim.deliver_all(flow.packets)
        key = flow_key_of(flow.packets[0].ip)
        assert len(victim.stream(key)) == flow.payload_bytes

    def test_flow_survives_perturbation(self):
        flow = self.flow(reorder_rate=0.3, retransmit_rate=0.2, fragment_rate=0.1)
        victim = Victim(policy=OverlapPolicy.FIRST)
        victim.deliver_all(flow.packets)
        key = None
        for packet in flow.packets:
            if not packet.ip.is_fragment or packet.ip.fragment_offset == 0:
                key = flow_key_of(packet.ip)
                break
        assert len(victim.stream(key)) == flow.payload_bytes

    def test_interactive_flows_use_tiny_segments(self):
        profile = TrafficProfile(tiny_rate=1.0)
        flow = generate_flow(
            random.Random(5), profile, start_time=0.0,
            client="10.1.1.1", server="192.168.1.1", client_port=2000,
        )
        assert flow.interactive
        sizes = [
            len(decode_tcp(p.ip).payload)
            for p in flow.packets
            if not p.ip.is_fragment and p.ip.protocol == IP_PROTO_TCP
        ]
        data_sizes = [s for s in sizes if s]
        assert data_sizes and max(data_sizes) < 8


class TestTraceGeneration:
    def test_trace_is_time_ordered(self):
        trace = generate_trace(TrafficProfile(flows=20), seed=2)
        times = [p.timestamp for p in trace]
        assert times == sorted(times)

    def test_trace_deterministic(self):
        a = generate_trace(TrafficProfile(flows=10), seed=9)
        b = generate_trace(TrafficProfile(flows=10), seed=9)
        assert [p.ip for p in a] == [p.ip for p in b]

    def test_flow_count_matches_profile(self):
        trace = generate_trace(TrafficProfile(flows=15, fragment_rate=0, udp_fraction=0), seed=3)
        flows = {
            flow_key_of(p.ip).canonical()
            for p in trace
            if p.ip.protocol == IP_PROTO_TCP and not p.ip.is_fragment
        }
        assert len(flows) == 15

    def test_heavy_tail_flow_sizes(self):
        profile = TrafficProfile(flows=200, fragment_rate=0, reorder_rate=0, retransmit_rate=0, udp_fraction=0)
        trace = generate_trace(profile, seed=11)
        per_flow: dict = {}
        for packet in trace:
            if packet.ip.is_fragment:
                continue
            seg = decode_tcp(packet.ip)
            key = flow_key_of(packet.ip).canonical()
            per_flow[key] = per_flow.get(key, 0) + len(seg.payload)
        sizes = sorted(per_flow.values())
        # Heavy tail: the biggest flow dwarfs the median.
        assert sizes[-1] > 5 * sizes[len(sizes) // 2]

    def test_packet_size_mixture(self):
        trace = generate_trace(TrafficProfile(flows=50, fragment_rate=0, udp_fraction=0), seed=4)
        sizes = [len(decode_tcp(p.ip).payload) for p in trace if not p.ip.is_fragment]
        assert any(s >= 1400 for s in sizes)
        assert any(0 < s <= 600 for s in sizes)


class TestUdpTraffic:
    def test_udp_fraction_generates_udp_packets(self):
        from repro.packet import IP_PROTO_UDP

        trace = generate_trace(TrafficProfile(flows=60, udp_fraction=0.5), seed=8)
        protocols = {p.ip.protocol for p in trace}
        assert IP_PROTO_UDP in protocols
        # UDP exchanges are a few packets while TCP flows are dozens, so
        # compare flow counts, not packet counts.
        udp_flows = {
            (p.ip.src, p.ip.payload[:2])
            for p in trace
            if p.ip.protocol == IP_PROTO_UDP
        }
        assert 10 < len(udp_flows) <= 60

    def test_udp_datagrams_are_wire_valid(self):
        from repro.packet import IP_PROTO_UDP, decode_udp

        trace = generate_trace(TrafficProfile(flows=40, udp_fraction=1.0), seed=8)
        for packet in trace:
            assert packet.ip.protocol == IP_PROTO_UDP
            dgram = decode_udp(packet.ip, strict=True)
            assert dgram.payload

    def test_udp_disabled(self):
        from repro.packet import IP_PROTO_UDP

        trace = generate_trace(TrafficProfile(flows=40, udp_fraction=0), seed=8)
        assert all(p.ip.protocol != IP_PROTO_UDP for p in trace)


class TestInjection:
    def test_attacks_interleaved_in_order(self):
        trace = generate_trace(TrafficProfile(flows=10), seed=5)
        attack = build_attack("tcp_seg_8", b"SIG" * 100, src="10.200.0.1")
        merged = inject_attacks(trace, [attack])
        times = [p.timestamp for p in merged]
        assert times == sorted(times)
        assert len(merged) == len(trace) + len(attack)

    def test_attack_packets_preserved(self):
        trace = generate_trace(TrafficProfile(flows=5), seed=5)
        attack = build_attack("plain", b"payload" * 50, src="10.200.0.1")
        merged = inject_attacks(trace, [attack])
        attack_sources = [p for p in merged if p.ip.src == "10.200.0.1"]
        assert len(attack_sources) == len(attack)

    def test_empty_trace(self):
        attack = build_attack("plain", b"payload" * 50)
        merged = inject_attacks([], [attack])
        assert len(merged) == len(attack)

    def test_merge_streams_stable(self):
        a = generate_trace(TrafficProfile(flows=3), seed=1)
        assert merge_streams([a]) == a


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=15, deadline=None)
def test_any_seed_generates_reassemblable_traffic(seed):
    profile = TrafficProfile(flows=4, reorder_rate=0.1, retransmit_rate=0.05, fragment_rate=0.05)
    trace = generate_trace(profile, seed=seed)
    victim = Victim(policy=OverlapPolicy.FIRST)
    victim.deliver_all(trace)  # must never raise
    assert trace
