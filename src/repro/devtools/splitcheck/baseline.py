"""Committed baseline of grandfathered findings.

The baseline is a JSON map of finding fingerprints (see
:attr:`~repro.devtools.splitcheck.findings.Finding.fingerprint`) to a
human-readable record of what was excused.  ``check`` subtracts
baselined findings from its exit-code arithmetic but still counts them,
so a shrinking baseline is visible progress and a growing one needs a
deliberate ``--update-baseline`` commit.

The repo's policy (DESIGN.md, "Static analysis") is an *empty* baseline
for ``core/``, ``match/``, and ``runtime/``: violations there are fixed,
not recorded.
"""

from __future__ import annotations

import json
from pathlib import Path

from .findings import Finding

__all__ = ["load_baseline", "partition", "write_baseline"]

_VERSION = 1


def load_baseline(path: Path | None) -> dict[str, dict[str, object]]:
    """Read a baseline file; a missing path or file is an empty baseline."""
    if path is None or not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path} is not a splitcheck baseline file")
    findings = data["findings"]
    if not isinstance(findings, dict):
        raise ValueError(f"{path}: 'findings' must be a fingerprint map")
    return findings


def write_baseline(path: Path, findings: list[Finding]) -> int:
    """Write every current finding as grandfathered; returns the count."""
    records = {
        finding.fingerprint: {
            "rule": finding.rule,
            "path": finding.path,
            "message": finding.message,
        }
        for finding in findings
    }
    payload = {
        "version": _VERSION,
        "comment": (
            "Grandfathered splitcheck findings.  Shrink me; never grow me "
            "without a review.  Regenerate with: splitdetect check --update-baseline"
        ),
        "findings": dict(sorted(records.items())),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(records)


def partition(
    findings: list[Finding], baseline: dict[str, dict[str, object]]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, grandfathered) against a baseline map."""
    fresh: list[Finding] = []
    known: list[Finding] = []
    for finding in findings:
        (known if finding.fingerprint in baseline else fresh).append(finding)
    return fresh, known
