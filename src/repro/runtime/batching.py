"""Fixed-size batch iteration shared by the runners and the CLI.

One helper, used everywhere a packet stream is consumed in batches: the
single-process run harness, the serial runner's router loop, and the
parallel runner's feeder.  Working from an iterator (not a list) is what
lets ``repro run`` stream a multi-GB pcap under a bounded footprint --
at most one batch of parsed packets is alive per pipeline stage.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import islice

from ..packet import TimedPacket

__all__ = ["iter_batches"]


def iter_batches(
    packets: Iterable[TimedPacket], size: int
) -> Iterator[list[TimedPacket]]:
    """Yield consecutive lists of at most ``size`` packets.

    Consumes lazily: each batch is materialized only when requested, so
    feeding from :func:`repro.pcap.read_trace` never holds more than one
    batch (per consumer) in memory.
    """
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    iterator = iter(packets)
    while True:
        batch = list(islice(iterator, size))
        if not batch:
            return
        yield batch
