"""Receiver-side TCP stream reassembly with target-based overlap policies.

One :class:`TcpReassembler` instance models one direction of one TCP
connection: it accepts segments in arrival order, buffers out-of-order
data, resolves overlaps per the configured :class:`OverlapPolicy`, and
delivers the in-order byte stream exactly as the modelled endpoint's
application would see it.  Every transport anomaly along the way is
reported as a :class:`StreamEventRecord`, which is what both the
conventional IPS (for alerting) and the evaluation (for diversion
statistics) consume.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..packet import seq_add, seq_diff
from .events import StreamEvent, StreamEventRecord
from .policies import OverlapPolicy, resolve_overlap

DEFAULT_HORIZON = 1 << 20
DEFAULT_MAX_BUFFERED = 1 << 20
DEFAULT_HISTORY = 4096


@dataclass
class ReassemblyResult:
    """Outcome of feeding one segment to the reassembler."""

    delivered: bytes = b""
    """Bytes that became contiguous with the delivered stream (possibly empty)."""

    events: list[StreamEventRecord] = field(default_factory=list)
    finished: bool = False
    """True once the FIN point has been reached in order."""


class TcpReassembler:
    """Reassembles one direction of a TCP stream.

    Parameters
    ----------
    policy:
        Which copy wins when segments overlap with different data.
    horizon:
        Maximum distance (bytes) past the next expected byte that data may
        be buffered; segments beyond it raise ``OUT_OF_WINDOW`` and are
        dropped, modelling a finite receive window.
    max_buffered:
        Out-of-order buffer budget in bytes; exceeding it raises
        ``BUFFER_OVERFLOW`` and drops the offending bytes.
    history:
        How many recently delivered bytes are retained to check
        retransmissions for consistency.  ``0`` disables the check.
    tiny_threshold:
        When positive, a non-final data segment smaller than this many
        bytes raises ``TINY_SEGMENT``.
    first_byte_seq:
        Absolute sequence number of the first stream byte (ISN + 1), when
        known.  Without it the first segment seen defines stream offset 0
        (midstream pickup), so a leading hole cannot be observed.
    """

    def __init__(
        self,
        *,
        policy: OverlapPolicy = OverlapPolicy.BSD,
        horizon: int = DEFAULT_HORIZON,
        max_buffered: int = DEFAULT_MAX_BUFFERED,
        history: int = DEFAULT_HISTORY,
        tiny_threshold: int = 0,
        first_byte_seq: int | None = None,
    ) -> None:
        self.policy = policy
        self.horizon = horizon
        self.max_buffered = max_buffered
        self.history_limit = history
        self.tiny_threshold = tiny_threshold
        self._base: int | None = first_byte_seq  # absolute seq of stream offset 0
        self._base_pinned = first_byte_seq is not None
        """An explicitly supplied origin is authoritative: data below it is
        known retransmission, so midstream-pickup rebasing must not move it."""
        self._next = 0  # stream offset of the next byte to deliver
        self._starts: list[int] = []  # sorted chunk start offsets
        self._chunks: list[bytearray] = []  # parallel payloads, disjoint
        self._history = bytearray()  # tail of the delivered stream
        self._fin_offset: int | None = None
        self.delivered_total = 0
        self.finished = False

    # -- accounting ------------------------------------------------------

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently held in the out-of-order buffer."""
        return sum(len(c) for c in self._chunks)

    @property
    def buffered_chunks(self) -> int:
        """Number of disjoint out-of-order chunks currently buffered."""
        return len(self._chunks)

    @property
    def next_offset(self) -> int:
        """Stream offset of the next byte the application would read."""
        return self._next

    @property
    def expected_seq(self) -> int | None:
        """Absolute sequence number of the next in-order byte (None until
        the stream origin is known).  Used to hand a flow between engines
        without losing its position."""
        if self._base is None:
            return None
        return self._expected_abs()

    def pending_holes(self) -> list[tuple[int, int]]:
        """Gaps (start, end) between the delivered stream and buffered data."""
        holes: list[tuple[int, int]] = []
        cursor = self._next
        for start, chunk in zip(self._starts, self._chunks):
            if start > cursor:
                holes.append((cursor, start))
            cursor = max(cursor, start + len(chunk))
        return holes

    # -- segment intake ---------------------------------------------------

    def add(
        self, seq: int, data: bytes, *, syn: bool = False, fin: bool = False
    ) -> ReassemblyResult:
        """Feed one segment; returns newly in-order bytes and any anomalies.

        ``seq`` is the absolute TCP sequence number of the segment.  SYN
        consumes one sequence number before the payload, FIN one after,
        per RFC 793.
        """
        result = ReassemblyResult()
        data_seq = seq_add(seq, 1) if syn else seq
        if self._base is None:
            self._base = data_seq
        rel = self._next + seq_diff(data_seq, self._expected_abs())
        if (
            rel < 0
            and not self._base_pinned
            and self._next == 0
            and self.delivered_total == 0
        ):
            # Midstream pickup saw a later segment first; an earlier one is
            # legitimate data, not a retransmission.  Shift the origin down.
            self._rebase(-rel)
            rel = 0
        if fin:
            fin_at = rel + len(data)
            if self._fin_offset is not None and self._fin_offset != fin_at:
                result.events.append(
                    StreamEventRecord(
                        StreamEvent.INCONSISTENT_OVERLAP,
                        fin_at,
                        detail="FIN moved",
                    )
                )
            else:
                self._fin_offset = fin_at
        if (
            self.tiny_threshold
            and data
            and len(data) < self.tiny_threshold
            and not fin
        ):
            result.events.append(
                StreamEventRecord(StreamEvent.TINY_SEGMENT, rel, len(data))
            )
        if data:
            self._ingest(rel, data, result)
        self._deliver(result)
        return result

    def _rebase(self, shift: int) -> None:
        """Move stream offset 0 down by ``shift`` bytes (pre-delivery only)."""
        assert self._base is not None
        self._base = seq_add(self._base, -shift % (2**32))
        self._starts = [start + shift for start in self._starts]
        if self._fin_offset is not None:
            self._fin_offset += shift

    def _expected_abs(self) -> int:
        """Absolute sequence number corresponding to stream offset _next."""
        assert self._base is not None
        return seq_add(self._base, self._next % (2**32))

    # -- internals --------------------------------------------------------

    def _ingest(self, rel: int, data: bytes, result: ReassemblyResult) -> None:
        end = rel + len(data)
        if end <= self._next:
            # Entirely within the already-delivered stream: a retransmission.
            self._check_history(rel, data, result)
            return
        if rel < self._next:
            # Partially retransmitted prefix; the delivered bytes are final.
            self._check_history(rel, data[: self._next - rel], result)
            data = data[self._next - rel :]
            rel = self._next
        if rel > self._next + self.horizon:
            result.events.append(
                StreamEventRecord(StreamEvent.OUT_OF_WINDOW, rel, len(data))
            )
            return
        if rel > self._next and not self._covers(rel):
            result.events.append(
                StreamEventRecord(StreamEvent.OUT_OF_ORDER, rel, len(data))
            )
        if len(data) > self.max_buffered - self.buffered_bytes:
            allowed = max(0, self.max_buffered - self.buffered_bytes)
            result.events.append(
                StreamEventRecord(
                    StreamEvent.BUFFER_OVERFLOW, rel, len(data) - allowed
                )
            )
            data = data[:allowed]
            if not data:
                return
        self._insert(rel, bytearray(data), result)

    def _covers(self, offset: int) -> bool:
        """True when ``offset`` falls inside an already-buffered chunk."""
        i = bisect.bisect_right(self._starts, offset) - 1
        return i >= 0 and offset < self._starts[i] + len(self._chunks[i])

    def _check_history(self, rel: int, data: bytes, result: ReassemblyResult) -> None:
        """Compare a retransmission against retained delivered bytes."""
        history_start = self._next - len(self._history)
        overlap_start = max(rel, history_start)
        overlap_end = min(rel + len(data), self._next)
        consistent = True
        checked = overlap_start < overlap_end
        if checked:
            old = self._history[
                overlap_start - history_start : overlap_end - history_start
            ]
            new = data[overlap_start - rel : overlap_end - rel]
            consistent = bytes(old) == bytes(new)
        event = (
            StreamEvent.RETRANSMISSION
            if consistent
            else StreamEvent.INCONSISTENT_OVERLAP
        )
        result.events.append(
            StreamEventRecord(event, rel, len(data), detail="vs delivered")
        )

    def _insert(self, rel: int, data: bytearray, result: ReassemblyResult) -> None:
        """Merge ``data`` at offset ``rel`` into the chunk list."""
        end = rel + len(data)
        # Collect every existing chunk intersecting [rel, end).
        lo = bisect.bisect_right(self._starts, rel)
        while lo > 0 and self._starts[lo - 1] + len(self._chunks[lo - 1]) > rel:
            lo -= 1
        hi = lo
        while hi < len(self._starts) and self._starts[hi] < end:
            hi += 1
        if lo == hi:
            self._starts.insert(lo, rel)
            self._chunks.insert(lo, data)
            return
        # Build the merged region spanning new data and all intersecting chunks.
        merged_start = min(rel, self._starts[lo])
        merged_end = max(end, self._starts[hi - 1] + len(self._chunks[hi - 1]))
        merged = bytearray(merged_end - merged_start)
        have = bytearray(merged_end - merged_start)  # occupancy map
        # Lay down old chunks first.
        for start, chunk in zip(self._starts[lo:hi], self._chunks[lo:hi]):
            at = start - merged_start
            merged[at : at + len(chunk)] = chunk
            for i in range(at, at + len(chunk)):
                have[i] = 1
        # Resolve each old-chunk overlap against the new segment.
        for start, chunk in zip(self._starts[lo:hi], self._chunks[lo:hi]):
            old_start, old_end = start, start + len(chunk)
            ov_start, ov_end = max(old_start, rel), min(old_end, end)
            if ov_start >= ov_end:
                continue
            old_bytes = chunk[ov_start - old_start : ov_end - old_start]
            new_bytes = data[ov_start - rel : ov_end - rel]
            consistent = bytes(old_bytes) == bytes(new_bytes)
            result.events.append(
                StreamEventRecord(
                    StreamEvent.OVERLAP if consistent else StreamEvent.INCONSISTENT_OVERLAP,
                    ov_start,
                    ov_end - ov_start,
                    detail=f"policy={self.policy.value}",
                )
            )
            if resolve_overlap(self.policy, old_start, old_end, rel, end):
                at = ov_start - merged_start
                merged[at : at + (ov_end - ov_start)] = new_bytes
        # Lay down the new segment's bytes where nothing was buffered.
        for i in range(len(data)):
            at = rel - merged_start + i
            if not have[at]:
                merged[at] = data[i]
                have[at] = 1
        # Replace the intersected chunks with the merged one.
        del self._starts[lo:hi]
        del self._chunks[lo:hi]
        self._starts.insert(lo, merged_start)
        self._chunks.insert(lo, merged)

    def _deliver(self, result: ReassemblyResult) -> None:
        """Move contiguous bytes at the head of the buffer into the stream."""
        delivered = bytearray()
        while self._starts and self._starts[0] == self._next:
            chunk = self._chunks.pop(0)
            self._starts.pop(0)
            delivered += chunk
            self._next += len(chunk)
        if delivered:
            self.delivered_total += len(delivered)
            self._history += delivered
            if len(self._history) > self.history_limit:
                del self._history[: len(self._history) - self.history_limit]
            result.delivered = bytes(delivered)
        if self._fin_offset is not None and self._next >= self._fin_offset:
            self.finished = True
            result.finished = True
