"""State-backend scale gate -- sketch state must stay bounded at 1M flows.

Three contracts of the ``--state-backend sketch`` mode (DESIGN.md,
"State backends"):

- **bounded state**: the fast path's provisioned per-flow state under
  the sketch backend is *constant* across 10k / 100k / 1M concurrent
  flows, while the exact dict backend grows linearly.  The 1M-flow
  sketch figure must also undercut both the dict extrapolated to 1M
  flows and ``MAX_CONVENTIONAL_FRACTION`` of the conventional
  reassembly provisioning for the same connection count.
- **fidelity**: against an exact-dict oracle on an interleaved
  multi-flow trace (in-order and out-of-order traffic mixed), the
  sketch backend's per-packet divert decisions may only disagree by
  *missing* diverts (a recycled cold slot forgets a flow, the monitor
  picks it up midstream).  False diverts come only from 16-bit
  fingerprint collisions; their rate is gated at
  ``FALSE_DIVERT_BUDGET``.
- **merge soundness**: the sharded runtime with a sketch-backed fast
  path produces the same :func:`repro.runtime.equivalence_digest`
  serial vs parallel at 4 workers, and the bucket-wise merged anomaly
  sketch preserves the summed counts.

The machine-readable results land in ``BENCH_state.json`` at the repo
root; CI uploads it as an artifact and ``bench_trend.py`` gates the
machine-independent numerics.  Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_state_scale.py
"""

import json
import sys
import time
from pathlib import Path

from exp_common import emit, gauntlet_ruleset, mixed_trace
from repro.core import FastPath, FastPathConfig
from repro.metrics import provisioned_conventional_state
from repro.packet import IPv4Packet, TcpSegment, TimedPacket
from repro.packet.tcp import TCP_ACK, TCP_SYN
from repro.runtime import EngineSpec, ParallelRunner, RunnerConfig, SerialRunner
from repro.signatures import RuleSet, split_ruleset

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Concurrent-flow counts driven through each backend.  The dict sweep
#: stops at 100k (its growth is linear by construction; 1M exact-dict
#: entries are *extrapolated* for the comparison rather than allocated).
SKETCH_SCALE_POINTS = (10_000, 100_000, 1_000_000)
DICT_SCALE_POINTS = (10_000, 100_000)

#: Flow count for the divert-fidelity oracle run (every flow concurrent).
ORACLE_FLOWS = 20_000
#: Every Nth oracle flow delivers its first two data segments swapped,
#: so the exact monitor diverts it OUT_OF_ORDER.
ORACLE_OOO_STRIDE = 20

#: Sketch-vs-exact divert disagreements of the *false* kind (sketch
#: diverts, oracle does not) per packet must stay at or below this.
FALSE_DIVERT_BUDGET = 0.01

#: Sketch provisioning at 1M flows must be under this fraction of the
#: conventional (per-connection reassembly buffer) provisioning.
MAX_CONVENTIONAL_FRACTION = 0.10

_PAYLOAD = b"x" * 64


def monitor_fastpath(backend: str) -> FastPath:
    """A fast path with no signatures: pure per-flow monitor + backend.

    The scale sweep measures *state*, not matching; an empty rule set
    keeps the automaton out of the way so a million flows stay cheap.
    """
    config = FastPathConfig(state_backend=backend, check_tiny=False)
    return FastPath(split_ruleset(RuleSet()), config)


def flow_packet(i: int, seq: int, payload: bytes, flags: int = TCP_ACK) -> TimedPacket:
    """One TCP packet of synthetic flow *i* (unique source per flow)."""
    segment = TcpSegment(
        src_port=1024 + (i & 0x3FFF), dst_port=80, seq=seq, flags=flags,
        payload=payload,
    )
    ip = IPv4Packet(
        src=f"10.{(i >> 16) & 255}.{(i >> 8) & 255}.{i & 255}",
        dst="10.200.0.1",
        protocol=6,
        payload=segment.serialize(),
    )
    return TimedPacket(0.0, ip)


def run_scale_point(backend: str, flows: int) -> dict:
    """Drive one data packet per flow; report peak provisioned state."""
    fast = monitor_fastpath(backend)
    peak = fast.state_bytes()
    start = time.perf_counter()
    for i in range(flows):
        fast.process(flow_packet(i, seq=1000, payload=_PAYLOAD))
        if i % 100_000 == 0:
            peak = max(peak, fast.state_bytes())
    wall = time.perf_counter() - start
    peak = max(peak, fast.state_bytes())
    return {
        "backend": backend,
        "flows": flows,
        "peak_state_bytes": peak,
        "tracked_flows": fast.tracked_flows,
        "slot_recycles": fast.table_evictions,
        "wall_seconds": round(wall, 3),
        "pps": round(flows / wall, 1),
    }


def oracle_trace() -> list[TimedPacket]:
    """Interleaved SYN + 3 data segments per flow, all flows concurrent.

    Stage-major order (every flow's SYN, then every flow's first data
    segment, ...) keeps all ``ORACLE_FLOWS`` flows alive at once --
    worst case for cold-slot collisions.  OOO flows swap their first
    two data segments, which the exact monitor diverts.
    """
    base = 1000
    stages: list[list[tuple[int, int, bytes]]] = [[] for _ in range(4)]
    for i in range(ORACLE_FLOWS):
        ooo = (i % ORACLE_OOO_STRIDE) == ORACLE_OOO_STRIDE - 1
        data = [
            (i, base + 1, _PAYLOAD),
            (i, base + 1 + 64, _PAYLOAD),
            (i, base + 1 + 128, _PAYLOAD),
        ]
        if ooo:
            data[0], data[1] = data[1], data[0]
        stages[0].append((i, base, b""))
        for stage, item in enumerate(data, start=1):
            stages[stage].append(item)
    packets = [
        flow_packet(i, seq=seq, payload=payload, flags=TCP_SYN if not payload else TCP_ACK)
        for stage in stages
        for (i, seq, payload) in stage
    ]
    return packets


def run_divert_oracle() -> dict:
    """Packet-by-packet divert comparison: sketch vs exact dict."""
    trace = oracle_trace()
    exact = monitor_fastpath("dict")
    sketch = monitor_fastpath("sketch")
    diverts_exact = diverts_sketch = false_diverts = missed_diverts = 0
    for packet in trace:
        want = exact.process(packet).divert is not None
        got = sketch.process(packet).divert is not None
        diverts_exact += want
        diverts_sketch += got
        false_diverts += got and not want
        missed_diverts += want and not got
    return {
        "flows": ORACLE_FLOWS,
        "packets": len(trace),
        "ooo_flows": ORACLE_FLOWS // ORACLE_OOO_STRIDE,
        "diverts_exact": diverts_exact,
        "diverts_sketch": diverts_sketch,
        "false_diverts": false_diverts,
        "missed_diverts": missed_diverts,
        "false_divert_rate": round(false_diverts / len(trace), 6),
        "budget_rate": FALSE_DIVERT_BUDGET,
    }


def run_digest_equality() -> dict:
    """Serial(4) vs parallel(4) with a sketch-backed fast path."""
    trace = mixed_trace(300)
    spec = EngineSpec(
        rules=gauntlet_ruleset(),
        fast_config=FastPathConfig(state_backend="sketch"),
    )
    config = RunnerConfig(batch_size=256)
    serial = SerialRunner(spec, shards=4, config=config).run(trace)
    parallel = ParallelRunner(spec, workers=4, config=config).run(trace)
    return {
        "workers": 4,
        "packets": serial.packets,
        "serial_digest": serial.digest(),
        "parallel_digest": parallel.digest(),
        "alerts": len(serial.alerts),
        "serial_sketch_total": serial.sketch.total() if serial.sketch else 0,
        "parallel_sketch_total": parallel.sketch.total() if parallel.sketch else 0,
        "sketches_equal": bool(
            serial.sketch is not None and serial.sketch == parallel.sketch
        ),
    }


def run_state_scale() -> dict:
    rows = [run_scale_point("sketch", n) for n in SKETCH_SCALE_POINTS]
    rows += [run_scale_point("dict", n) for n in DICT_SCALE_POINTS]

    dict_rows = [r for r in rows if r["backend"] == "dict"]
    sketch_rows = [r for r in rows if r["backend"] == "sketch"]
    largest_dict = dict_rows[-1]
    dict_bytes_per_flow = largest_dict["peak_state_bytes"] / largest_dict["flows"]
    dict_projected_1m = int(dict_bytes_per_flow * 1_000_000)
    sketch_1m = sketch_rows[-1]["peak_state_bytes"]
    conventional_1m = provisioned_conventional_state(1_000_000)
    return {
        "scale": rows,
        "oracle": run_divert_oracle(),
        "runtime": run_digest_equality(),
        "comparison_1m": {
            "sketch_peak_bytes": sketch_1m,
            "dict_projected_bytes": dict_projected_1m,
            "conventional_bytes": conventional_1m,
            "sketch_vs_conventional_ratio": round(sketch_1m / conventional_1m, 6),
            "max_conventional_fraction": MAX_CONVENTIONAL_FRACTION,
        },
    }


def check_and_emit(result: dict, capfd=None) -> None:
    (REPO_ROOT / "BENCH_state.json").write_text(
        json.dumps(result, indent=2) + "\n", encoding="utf-8"
    )
    lines = [
        f"{'backend':>8}  {'flows':>9}  {'peak state B':>12}  {'tracked':>9}  "
        f"{'recycles':>9}  {'pps':>10}",
    ]
    for row in result["scale"]:
        lines.append(
            f"{row['backend']:>8}  {row['flows']:>9,}  {row['peak_state_bytes']:>12,}  "
            f"{row['tracked_flows']:>9,}  {row['slot_recycles']:>9,}  {row['pps']:>10,.0f}"
        )
    oracle = result["oracle"]
    lines.append(
        f"oracle: {oracle['packets']:,} packets / {oracle['flows']:,} flows -- "
        f"exact diverts {oracle['diverts_exact']:,}, sketch {oracle['diverts_sketch']:,}, "
        f"false {oracle['false_diverts']} ({oracle['false_divert_rate']:.4%}, "
        f"budget {oracle['budget_rate']:.0%}), missed {oracle['missed_diverts']}"
    )
    comparison = result["comparison_1m"]
    lines.append(
        f"1M flows: sketch {comparison['sketch_peak_bytes']:,} B vs dict "
        f"{comparison['dict_projected_bytes']:,} B vs conventional "
        f"{comparison['conventional_bytes']:,} B "
        f"({comparison['sketch_vs_conventional_ratio']:.4%} of conventional)"
    )
    runtime = result["runtime"]
    lines.append(
        f"runtime: serial(4) == parallel(4) digest: "
        f"{runtime['serial_digest'] == runtime['parallel_digest']}, "
        f"merged sketch totals {runtime['serial_sketch_total']:,} / "
        f"{runtime['parallel_sketch_total']:,}"
    )
    emit("state_scale", lines, capfd)

    # Bounded state: the sketch provisioning is a constant, independent
    # of offered flow count; the dict grows with every flow.
    sketch_peaks = {
        r["peak_state_bytes"] for r in result["scale"] if r["backend"] == "sketch"
    }
    assert len(sketch_peaks) == 1, f"sketch state not flat across scale: {sketch_peaks}"
    dict_rows = [r for r in result["scale"] if r["backend"] == "dict"]
    assert dict_rows[-1]["peak_state_bytes"] > dict_rows[0]["peak_state_bytes"], (
        "dict state did not grow with flow count -- sweep is broken"
    )
    assert comparison["sketch_peak_bytes"] < comparison["dict_projected_bytes"], (
        "sketch provisioning does not undercut the exact dict at 1M flows"
    )
    assert (
        comparison["sketch_peak_bytes"]
        < MAX_CONVENTIONAL_FRACTION * comparison["conventional_bytes"]
    ), "sketch provisioning exceeds the conventional-state budget"

    assert oracle["diverts_exact"] > 0, "oracle trace produced no diverts"
    assert oracle["false_divert_rate"] <= FALSE_DIVERT_BUDGET, (
        f"false-divert rate {oracle['false_divert_rate']:.4%} over budget "
        f"{FALSE_DIVERT_BUDGET:.0%}"
    )

    assert runtime["serial_digest"] == runtime["parallel_digest"], (
        "sketch backend broke serial/parallel equivalence at 4 workers"
    )
    assert runtime["sketches_equal"], "merged shard sketches diverged serial vs parallel"
    assert runtime["serial_sketch_total"] == runtime["parallel_sketch_total"]
    assert runtime["alerts"] > 0, "gauntlet produced no alerts under sketch backend"


def test_state_scale(capfd):
    """Bounded sketch state + divert fidelity + 4-worker digest equality.

    Emits BENCH_state.json."""
    check_and_emit(run_state_scale(), capfd)


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent))
    check_and_emit(run_state_scale())
    print("state scale gate passed", file=sys.stderr)
