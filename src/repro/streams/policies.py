"""Target-based segment-overlap resolution policies.

When two TCP segments (or IP fragments) claim the same stream bytes with
different data, real operating systems disagree about which copy the
application sees.  Ptacek-Newsham evasions exploit exactly this: an IPS
that resolves the ambiguity differently from the protected host can be
blinded.  The taxonomy here follows Novak's target-based reassembly
analysis (as adopted by Snort): the retained copy depends on how the new
segment's start aligns with the old one's.

The policies are expressed as a single pure function
:func:`resolve_overlap`, which the reassembler and defragmenter call per
overlapping region.  The exact rules (documented per policy below) are a
faithful simplification of the published behaviours; what the evaluation
requires is that (a) each policy is deterministic and (b) the policies
genuinely disagree on crafted overlaps, which the tests assert.
"""

from __future__ import annotations

import enum


class OverlapPolicy(enum.Enum):
    """Which copy of overlapping data the reassembler keeps.

    - ``FIRST``   -- bytes already held are never overwritten (old wins).
    - ``LAST``    -- the newest segment always overwrites (new wins).
    - ``BSD``     -- old wins, except a new segment that starts strictly
      before the old one wins the whole overlapped region.
    - ``LINUX``   -- old wins, except a new segment that starts strictly
      before the old one wins only the bytes before the old segment's
      start (i.e. old data is never rewritten, but the new segment is not
      trimmed on the left).  For resolution of the *overlapping* region
      this means old wins always; LINUX differs from FIRST only in how
      it treats segments that extend past the old one on the right,
      which the byte-granularity engine handles uniformly.
    - ``WINDOWS`` -- old wins, except a new segment that starts before
      *and* ends after the old one (full engulfment) replaces it.
    - ``SOLARIS`` -- new wins, except a new segment that ends before the
      old one's end keeps the old tail (approximated here as: new wins
      when it extends at least as far as the old segment's end).
    """

    FIRST = "first"
    LAST = "last"
    BSD = "bsd"
    LINUX = "linux"
    WINDOWS = "windows"
    SOLARIS = "solaris"


def resolve_overlap(
    policy: OverlapPolicy,
    old_start: int,
    old_end: int,
    new_start: int,
    new_end: int,
) -> bool:
    """Return True when the NEW segment's bytes win the overlapping region.

    ``old_start``/``old_end`` bound the previously buffered segment;
    ``new_start``/``new_end`` bound the incoming one (end exclusive).
    The caller guarantees the ranges actually intersect.
    """
    if old_end <= new_start or new_end <= old_start:
        raise ValueError("resolve_overlap called on non-overlapping ranges")
    if policy is OverlapPolicy.FIRST:
        return False
    if policy is OverlapPolicy.LAST:
        return True
    if policy is OverlapPolicy.BSD:
        return new_start < old_start
    if policy is OverlapPolicy.LINUX:
        return False
    if policy is OverlapPolicy.WINDOWS:
        return new_start < old_start and new_end > old_end
    if policy is OverlapPolicy.SOLARIS:
        return new_end >= old_end
    raise AssertionError(f"unhandled policy {policy}")


def ambiguous_policies(
    old_start: int, old_end: int, new_start: int, new_end: int
) -> bool:
    """True when at least two policies disagree about this overlap.

    Used by tests and by the normalizer's ambiguity detector: if all
    policies agree, differently-configured endpoints still see the same
    bytes and the overlap cannot be used for evasion.
    """
    verdicts = {
        resolve_overlap(p, old_start, old_end, new_start, new_end)
        for p in OverlapPolicy
    }
    return len(verdicts) > 1
