"""Table 1 -- the signature corpus is splittable.

For each nominal piece length p, how much of the corpus splits, how many
pieces the fast path must match, and what small-packet threshold B the
split implies.  The paper's prerequisite: realistic rule sets admit
k >= 3 splits for almost every signature at practical p.
"""

import sys

from exp_common import bundled_rules, emit
from repro.match import AhoCorasick
from repro.signatures import SplitPolicy, split_ruleset


def table_rows() -> list[str]:
    rules = bundled_rules()
    lengths = sorted(len(s) for s in rules)
    lines = [
        f"corpus: {len(rules)} signatures; pattern length "
        f"min/median/max = {lengths[0]}/{lengths[len(lengths) // 2]}/{lengths[-1]}",
        f"{'p':>4} {'B':>4} {'splittable':>10} {'unsplit':>8} {'pieces':>7} "
        f"{'pieces/sig':>10} {'AC states':>10}",
    ]
    for p in (4, 6, 8, 10, 12):
        split = split_ruleset(rules, SplitPolicy(piece_length=p))
        pieces = split.all_pieces()
        automaton = AhoCorasick([piece.data for piece in pieces])
        lines.append(
            f"{p:>4} {split.small_packet_threshold:>4} {len(split.splits):>10} "
            f"{len(split.unsplittable):>8} {split.piece_count:>7} "
            f"{split.piece_count / max(len(split.splits), 1):>10.2f} "
            f"{automaton.state_count:>10}"
        )
    return lines


def test_table1_split_corpus(benchmark, capfd):
    rules = bundled_rules()
    split = benchmark(split_ruleset, rules, SplitPolicy(piece_length=8))
    assert len(split.splits) > 0.9 * len(rules)
    emit("table1_signature_corpus", table_rows(), capfd)


if __name__ == "__main__":
    print("\n".join(table_rows()), file=sys.stderr)
