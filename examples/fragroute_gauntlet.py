#!/usr/bin/env python3
"""The FragRoute gauntlet: every catalog evasion against three engines.

For each strategy, the attack is first validated against an emulated
victim (it must actually deliver the signature), then replayed through:

- the naive per-packet matcher (no reassembly),
- the conventional IPS (reassemble + normalize everything),
- Split-Detect (per-packet pieces + diversion).

The printed matrix is the live version of the paper's evasion-coverage
table.

Run:  python examples/fragroute_gauntlet.py
"""

import random

from repro.core import AlertKind, ConventionalIPS, NaivePacketIPS, SplitDetectIPS
from repro.evasion import STRATEGIES, AttackSpec, Victim
from repro.signatures import RuleSet, Signature
from repro.telemetry import TelemetryRegistry, summarize

SIGNATURE = b"EVIL-PAYLOAD\x90\x90\x90\x90:exec/bin/sh"
OFFSET = 120


def ruleset() -> RuleSet:
    rules = RuleSet()
    rules.add(Signature(sid=3001, pattern=SIGNATURE, msg="gauntlet target"))
    return rules


def payload() -> bytes:
    body = bytearray(b"Content-Filler: benign web traffic padding / " * 30)
    body[OFFSET : OFFSET + len(SIGNATURE)] = SIGNATURE
    return bytes(body)


def detected(alerts) -> bool:
    return any(
        (alert.kind in (AlertKind.SIGNATURE, AlertKind.PARTIAL_SIGNATURE) and alert.sid == 3001)
        or alert.kind is AlertKind.AMBIGUITY
        for alert in alerts
    )


def main() -> None:
    # One shared registry across every Split-Detect run: metric
    # registration is idempotent, so the per-strategy engines all bind
    # the same counters and the totals aggregate gauntlet-wide.
    telemetry = TelemetryRegistry()
    print(f"{'strategy':<18} {'delivered':>9} {'naive':>6} {'conventional':>12} {'split-detect':>12}")
    print("-" * 62)
    for name in sorted(STRATEGIES):
        strategy = STRATEGIES[name]
        spec = AttackSpec(
            payload=payload(),
            rng=random.Random(11),
            signature_span=(OFFSET, len(SIGNATURE)),
        )
        packets = strategy.build(spec)

        victim = Victim(policy=strategy.victim_policy, hops_behind_ips=strategy.victim_hops)
        victim.deliver_all(packets)
        delivered = victim.received(SIGNATURE)

        verdicts = []
        split_engine = SplitDetectIPS(ruleset(), telemetry=telemetry)
        for engine in (NaivePacketIPS(ruleset()), ConventionalIPS(ruleset()), split_engine):
            alerts = engine.process_batch(packets)
            verdicts.append(detected(alerts))
        split_engine.refresh_telemetry()
        naive, conventional, split = verdicts
        print(
            f"{name:<18} {'yes' if delivered else 'NO':>9} "
            f"{'HIT' if naive else 'miss':>6} {'HIT' if conventional else 'miss':>12} "
            f"{'HIT' if split else 'miss':>12}"
        )
    print("\nSplit-Detect and the conventional IPS catch every delivered attack;")
    print("the naive matcher misses exactly the segmentation/fragmentation class.")
    print("\nSplit-Detect telemetry, aggregated over the whole gauntlet:")
    for prefix in ("repro_engine_diversions_total", "repro_engine_packets_total",
                   "repro_engine_bytes_total", "repro_fastpath_anomaly_total"):
        for line in summarize(telemetry, prefix=prefix):
            print(f"  {line}")


if __name__ == "__main__":
    main()
