"""splitcheck: repo-wide static invariant analysis.

The abstract's headline numbers rest on conventions no runtime test can
fully enforce -- telemetry must be skippable in one branch (PR 2's
<=1.15x overhead gate), the merge layer must be deterministic (PR 3's
serial==parallel SHA-256 digest), and everything crossing a worker
queue must pickle.  splitcheck encodes those conventions as AST rules
so every future scaling PR keeps them by construction:

========  ==========================================================
SD101     per-packet telemetry guarded by ``tel_on``/``enabled``
SD102     no wall-clock/entropy/set-order in the merge/digest path
SD103     only picklable module-level data crosses worker queues
SD104     busy accounting on CPU time, wall fields on wall clocks
SD105     no str/bytes mixing; struct formats match field widths
========  ==========================================================

Project rules (SD2xx) run once over the whole tree via a symbol/import
graph with def-use facts (:mod:`.facts`, :mod:`.project`):

========  ==========================================================
SD201     metric/span names unique, well-formed, in DESIGN.md registry
SD202     worker wire-protocol kinds exhaustive in both directions
SD203     seq arithmetic only through ``seq_add``/``seq_diff``
SD204     sockets/processes/queues/files closed on all paths
========  ==========================================================

A content-fingerprint cache (``.splitcheck-cache.json``) makes warm
runs skip parsing for unchanged files; ``--graph`` dumps the project
graph as JSON.

Run it as ``splitdetect check`` or
``python -m repro.devtools.splitcheck``; configure via
``[tool.splitcheck]`` in pyproject.toml; suppress single lines with
``# splitcheck: ignore[SDxxx]``; grandfather legacy findings in a
committed baseline file (the repo policy keeps it empty for ``core/``,
``match/``, and ``runtime/``).
"""

from __future__ import annotations

from .baseline import load_baseline, partition, write_baseline
from .cache import CACHE_FILENAME, FactsCache
from .config import Config, RuleConfig, find_root, load_config
from .engine import (
    FileContext,
    Rule,
    all_rules,
    build_graph,
    check_paths,
    iter_python_files,
    register,
)
from .facts import FileFacts, extract_facts
from .findings import Finding, Severity
from .pragmas import PragmaIndex
from .project import ProjectContext, ProjectGraph, ProjectRule

__all__ = [
    "CACHE_FILENAME",
    "Config",
    "FactsCache",
    "FileContext",
    "FileFacts",
    "Finding",
    "PragmaIndex",
    "ProjectContext",
    "ProjectGraph",
    "ProjectRule",
    "Rule",
    "RuleConfig",
    "Severity",
    "all_rules",
    "build_graph",
    "check_paths",
    "extract_facts",
    "find_root",
    "iter_python_files",
    "load_baseline",
    "load_config",
    "partition",
    "register",
    "write_baseline",
]
