"""Per-shard results and their deterministic merge into one report.

Shards are shared-nothing, so each produces an independent
:class:`ShardReport`; :func:`merge_shard_reports` folds N of them into a
:class:`RuntimeReport` whose contract is:

- **alerts** are re-sorted into a deterministic global order -- packet
  time first, then shard index, then the shard's emission sequence -- so
  serial and parallel runs of the same trace print identically;
- **counters** (packets, bytes, diversions, alerts, evictions) are
  summed, making them directly comparable with an unsharded engine's
  :class:`~repro.core.EngineStats` on the same trace;
- **peaks** (state bytes, flows) are summed too: each shard provisions
  its own tables, so the system-wide footprint is the sum of per-shard
  provisioning (an upper bound on any instantaneous global peak);
- **telemetry** registries merge under the per-metric rules the registry
  declares (sum counters, bucket-wise sum histograms, max/sum/last
  gauges -- see :meth:`repro.telemetry.TelemetryRegistry.merge`).

:func:`equivalence_digest` condenses the alert list and summed counters
into one hash so benchmarks and CI can assert serial == parallel ==
unsharded without hauling alert lists around.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..core import Alert, EngineStats
from ..telemetry import TelemetryRegistry

__all__ = [
    "RuntimeReport",
    "ShardReport",
    "alert_sort_key",
    "equivalence_digest",
    "merge_shard_reports",
]


def alert_sort_key(alert: Alert) -> tuple:
    """A total, content-based order on alerts, stable across processes.

    Used for equivalence comparison (and the digest): two runs that
    produced the same alert *set* compare equal after sorting with this
    key, regardless of how routing interleaved emission.
    """
    return (
        alert.timestamp,
        str(alert.flow),
        alert.kind.value,
        -1 if alert.sid is None else alert.sid,
        alert.stream_offset,
        alert.path,
        alert.msg,
    )


def equivalence_digest(alerts: list[Alert], stats: EngineStats) -> str:
    """SHA-256 over the canonicalized alert list + summed counters.

    The same trace must yield the same digest from the unsharded engine,
    the serial runner, and the parallel runner at any worker count --
    this is the bit benchmarks and CI compare.
    """
    canonical = {
        "alerts": [list(map(str, alert_sort_key(a))) for a in sorted(alerts, key=alert_sort_key)],
        "packets": stats.packets_total,
        "fast_packets": stats.fast_packets,
        "slow_packets": stats.slow_packets,
        "fast_bytes": stats.fast_bytes_scanned,
        "slow_bytes": stats.slow_bytes_normalized,
        "diversions": stats.diversions,
        "alert_count": stats.alerts,
    }
    payload = json.dumps(canonical, separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()


@dataclass
class ShardReport:
    """Everything one shard produced (crosses the process boundary)."""

    shard: int
    alerts: list[Alert] = field(default_factory=list)
    stats: EngineStats = field(default_factory=EngineStats)
    divert_reasons: dict[str, int] = field(default_factory=dict)
    diverted_flows: int = 0
    reinstated_flows: int = 0
    overload_refusals: int = 0
    peak_state_bytes: int = 0
    peak_flows: int = 0
    evictions: int = 0
    batches: int = 0
    busy_ns: int = 0
    """CPU nanoseconds this shard's engine spent processing (queue wait
    and scheduler preemption excluded) -- the per-shard denominator of
    aggregate throughput."""

    telemetry: TelemetryRegistry | None = None

    @property
    def busy_seconds(self) -> float:
        return self.busy_ns / 1e9


@dataclass
class RuntimeReport:
    """The merged view of one sharded run."""

    mode: str
    """``"serial"`` or ``"parallel"``."""

    workers: int
    alerts: list[Alert] = field(default_factory=list)
    shards: list[ShardReport] = field(default_factory=list)
    stats: EngineStats = field(default_factory=EngineStats)
    divert_reasons: dict[str, int] = field(default_factory=dict)
    diverted_flows: int = 0
    reinstated_flows: int = 0
    overload_refusals: int = 0
    peak_state_bytes: int = 0
    peak_flows: int = 0
    evictions: int = 0
    batches_routed: int = 0
    shed_packets: int = 0
    shed_batches: int = 0
    wall_seconds: float = 0.0
    telemetry: dict | None = None
    """Merged registry snapshot (None when telemetry was off)."""

    registry: TelemetryRegistry | None = None
    """The live merged registry behind :attr:`telemetry`, for exporters
    (:func:`repro.telemetry.write_telemetry`) and further merging."""

    @property
    def packets(self) -> int:
        """Packets actually examined (shed packets are not in here)."""
        return self.stats.packets_total

    @property
    def diversion_byte_fraction(self) -> float:
        total = self.stats.fast_bytes_scanned + self.stats.slow_bytes_normalized
        return self.stats.slow_bytes_normalized / total if total else 0.0

    @property
    def wall_throughput_pps(self) -> float:
        """End-to-end packets per second (routing + queues + engines)."""
        return self.packets / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def aggregate_shard_pps(self) -> float:
        """Sum of per-shard engine rates (packets over engine-busy time).

        This is capacity the shards provide when each has its own core;
        on a host with fewer cores than workers the wall number cannot
        reach it, but the per-shard rates still show whether sharding
        itself added overhead.
        """
        return sum(
            shard.stats.packets_total / shard.busy_seconds
            for shard in self.shards
            if shard.busy_ns > 0
        )

    def digest(self) -> str:
        """The serial-vs-parallel-vs-unsharded equivalence hash."""
        return equivalence_digest(self.alerts, self.stats)


def merge_shard_reports(
    shard_reports: list[ShardReport],
    *,
    mode: str,
    workers: int,
    wall_seconds: float,
    batches_routed: int = 0,
    shed_packets: int = 0,
    shed_batches: int = 0,
) -> RuntimeReport:
    """Fold per-shard results into the combined report (see module doc)."""
    report = RuntimeReport(mode=mode, workers=workers, wall_seconds=wall_seconds)
    report.shards = sorted(shard_reports, key=lambda r: r.shard)
    report.batches_routed = batches_routed
    report.shed_packets = shed_packets
    report.shed_batches = shed_batches

    ordered: list[tuple[float, int, int, Alert]] = []
    for shard in report.shards:
        for seq, alert in enumerate(shard.alerts):
            ordered.append((alert.timestamp, shard.shard, seq, alert))
        stats = shard.stats
        report.stats.packets_total += stats.packets_total
        report.stats.fast_packets += stats.fast_packets
        report.stats.slow_packets += stats.slow_packets
        report.stats.fast_bytes_scanned += stats.fast_bytes_scanned
        report.stats.slow_bytes_normalized += stats.slow_bytes_normalized
        report.stats.diversions += stats.diversions
        report.stats.alerts += stats.alerts
        for reason, count in shard.divert_reasons.items():
            report.divert_reasons[reason] = report.divert_reasons.get(reason, 0) + count
        report.diverted_flows += shard.diverted_flows
        report.reinstated_flows += shard.reinstated_flows
        report.overload_refusals += shard.overload_refusals
        report.peak_state_bytes += shard.peak_state_bytes
        report.peak_flows += shard.peak_flows
        report.evictions += shard.evictions
    ordered.sort(key=lambda entry: entry[:3])
    report.alerts = [entry[3] for entry in ordered]

    registries = [s.telemetry for s in report.shards if s.telemetry is not None]
    if registries:
        merged = TelemetryRegistry()
        for registry in registries:
            merged.merge(registry)
        runtime_shed = merged.counter(
            "repro_runtime_shed_packets_total",
            "Packets dropped unexamined because a shard queue was full "
            "under the shed backpressure policy (the coverage hole)",
        )
        if shed_packets:
            runtime_shed.inc(shed_packets)
        runtime_batches = merged.counter(
            "repro_runtime_batches_routed_total",
            "Per-shard sub-batches the router enqueued",
        )
        if batches_routed:
            runtime_batches.inc(batches_routed)
        merged.gauge(
            "repro_runtime_workers", "Shards this run was partitioned across",
            merge="sum",
        ).set(workers)
        report.registry = merged
        report.telemetry = merged.snapshot()
    return report
