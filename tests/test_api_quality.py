"""Library-quality gates: public API shape and documentation coverage."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.evasion",
    "repro.match",
    "repro.metrics",
    "repro.packet",
    "repro.pcap",
    "repro.signatures",
    "repro.streams",
    "repro.theory",
    "repro.traffic",
]


def public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        yield name, getattr(module, name)


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports_and_documents_itself(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} lacks a module docstring"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.__all__ lists missing {name}"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_classes_and_functions_have_docstrings(package):
    module = importlib.import_module(package)
    undocumented = []
    for name, obj in public_members(module):
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro") and not obj.__doc__:
                undocumented.append(name)
    assert not undocumented, f"{package}: undocumented public items {undocumented}"


def test_every_submodule_has_docstring():
    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        module = importlib.import_module(info.name)
        if not module.__doc__:
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"


def test_public_methods_of_core_classes_documented():
    from repro.core import ConventionalIPS, FastPath, SlowPath, SplitDetectIPS
    from repro.streams import ActiveNormalizer, StreamNormalizer, TcpReassembler

    undocumented = []
    for cls in (
        SplitDetectIPS, FastPath, SlowPath, ConventionalIPS,
        TcpReassembler, StreamNormalizer, ActiveNormalizer,
    ):
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            func = member.fget if isinstance(member, property) else member
            if callable(func) and not getattr(func, "__doc__", None):
                undocumented.append(f"{cls.__name__}.{name}")
    assert not undocumented, undocumented


def test_version_is_exposed():
    assert repro.__version__ == "1.0.0"
