"""Unit tests for the Split-Detect fast path."""

import pytest

from helpers import ATTACK_SIGNATURE, attack_ruleset
from repro.core import FAST_FLOW_STATE_BYTES, DivertReason, FastPath, FastPathConfig
from repro.evasion import build_attack, even_segments, plan_to_packets
from repro.packet import (
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TcpSegment,
    TimedPacket,
    build_tcp_packet,
    fragment,
)
from repro.signatures import SplitPolicy, split_ruleset


def make_fastpath(config=None, piece_length=8):
    rules = attack_ruleset()
    split = split_ruleset(rules, SplitPolicy(piece_length=piece_length))
    return FastPath(split, config)


def packets_for(payload, size=512, **conn):
    return plan_to_packets(even_segments(payload, size), **conn)


def run(fastpath, packets):
    results = [fastpath.process(p) for p in packets]
    diverts = [r.divert for r in results if r.divert]
    return results, diverts


class TestCleanTraffic:
    def test_benign_in_order_flow_passes(self):
        fp = make_fastpath()
        payload = b"Nothing suspicious here at all, plain web browsing. " * 40
        _, diverts = run(fp, packets_for(payload))
        assert diverts == []

    def test_flow_state_created_and_freed(self):
        fp = make_fastpath()
        packets = packets_for(b"benign data benign data benign data " * 30)
        for packet in packets[:-1]:
            fp.process(packet)
        assert fp.tracked_flows == 1
        fp.process(packets[-1])  # FIN frees the entry
        assert fp.tracked_flows == 0

    def test_rst_frees_state(self):
        fp = make_fastpath()
        fp.process(packets_for(b"x" * 600)[0])  # SYN
        rst = TcpSegment(src_port=44000, dst_port=80, seq=9, flags=TCP_RST)
        fp.process(TimedPacket(1.0, build_tcp_packet("10.9.9.9", "10.0.0.2", rst)))
        assert fp.tracked_flows == 0

    def test_state_bytes_accounting(self):
        fp = make_fastpath()
        packets = packets_for(b"a" * 600, src_port=1001) + packets_for(b"b" * 600, src_port=1002)
        for packet in packets:
            if not packet.ip.payload:
                continue
            fp.process(packet)
        assert fp.state_bytes() == fp.tracked_flows * FAST_FLOW_STATE_BYTES


def tcp_at(timestamp, src, dst, segment, **kw):
    return TimedPacket(timestamp, build_tcp_packet(src, dst, segment, **kw))


class TestStateLeakRegression:
    """Monitor entries must never outlive their flow (leak regressions)."""

    CLIENT = "10.9.9.9"
    SERVER = "10.0.0.2"

    def _client_seg(self, **kw):
        return TcpSegment(src_port=44000, dst_port=80, **kw)

    def _server_seg(self, **kw):
        return TcpSegment(src_port=80, dst_port=44000, **kw)

    def _bidirectional(self, fp):
        """Data in both directions: one monitor entry per direction."""
        fp.process(tcp_at(0.0, self.CLIENT, self.SERVER,
                          self._client_seg(seq=1, flags=TCP_ACK, payload=b"c" * 600)))
        fp.process(tcp_at(0.1, self.SERVER, self.CLIENT,
                          self._server_seg(seq=1, flags=TCP_ACK, payload=b"s" * 600)))
        assert fp.tracked_flows == 2

    def test_rst_clears_both_directions(self):
        fp = make_fastpath()
        self._bidirectional(fp)
        fp.process(tcp_at(0.2, self.CLIENT, self.SERVER,
                          self._client_seg(seq=601, flags=TCP_RST)))
        assert fp.tracked_flows == 0

    def test_fin_closes_only_the_sender_direction(self):
        fp = make_fastpath()
        self._bidirectional(fp)
        fp.process(tcp_at(0.2, self.CLIENT, self.SERVER,
                          self._client_seg(seq=601, flags=TCP_FIN | TCP_ACK)))
        # The server may still be sending; its monitor entry survives.
        assert fp.tracked_flows == 1

    def test_final_ack_does_not_resurrect_closed_flow(self):
        fp = make_fastpath()
        self._bidirectional(fp)
        fp.process(tcp_at(0.2, self.CLIENT, self.SERVER,
                          self._client_seg(seq=601, flags=TCP_FIN | TCP_ACK)))
        fp.process(tcp_at(0.3, self.SERVER, self.CLIENT,
                          self._server_seg(seq=601, flags=TCP_FIN | TCP_ACK)))
        assert fp.tracked_flows == 0
        # The handshake's final pure ACK must not recreate an entry.
        fp.process(tcp_at(0.4, self.CLIENT, self.SERVER,
                          self._client_seg(seq=602, flags=TCP_ACK)))
        assert fp.tracked_flows == 0

    def test_pure_ack_creates_no_state(self):
        fp = make_fastpath()
        fp.process(tcp_at(0.0, self.CLIENT, self.SERVER,
                          self._client_seg(seq=1, flags=TCP_ACK)))
        assert fp.tracked_flows == 0

    def test_evict_idle_reclaims_only_stale_entries(self):
        fp = make_fastpath()
        fp.process(tcp_at(0.0, self.CLIENT, self.SERVER,
                          TcpSegment(src_port=1001, dst_port=80, seq=1,
                                     flags=TCP_ACK, payload=b"a" * 600)))
        fp.process(tcp_at(200.0, self.CLIENT, self.SERVER,
                          TcpSegment(src_port=1002, dst_port=80, seq=1,
                                     flags=TCP_ACK, payload=b"b" * 600)))
        assert fp.tracked_flows == 2
        assert fp.evict_idle(now=350.0) == 1  # default timeout 300s
        assert fp.tracked_flows == 1
        (survivor,) = fp.live_flows()
        assert 1002 in (survivor.src_port, survivor.dst_port)


class TestAnomalyMonitor:
    def test_tiny_segment_diverts(self):
        fp = make_fastpath()
        _, diverts = run(fp, packets_for(b"x" * 100, size=4))
        assert DivertReason.TINY_SEGMENT in diverts

    def test_final_fin_segment_exempt_from_tiny(self):
        fp = make_fastpath()
        # 600 bytes at size 512: final segment is 88 bytes with FIN; 88 < B
        # never happens with B=16, so use a 3-byte FIN tail explicitly.
        packets = packets_for(b"x" * 515, size=512)
        results, diverts = run(fp, packets)
        assert diverts == []

    def test_out_of_order_diverts(self):
        fp = make_fastpath()
        packets = packets_for(b"x" * 2000, size=500)
        reordered = [packets[0], packets[2], packets[1]] + packets[3:]
        _, diverts = run(fp, reordered)
        assert DivertReason.OUT_OF_ORDER in diverts

    def test_retransmission_diverts(self):
        fp = make_fastpath()
        packets = packets_for(b"x" * 2000, size=500)
        replayed = packets[:3] + [packets[2]] + packets[3:]
        _, diverts = run(fp, replayed)
        assert DivertReason.RETRANSMISSION in diverts

    def test_fragment_diverts(self):
        fp = make_fastpath()
        seg = TcpSegment(src_port=44000, dst_port=80, seq=1, flags=TCP_ACK, payload=b"y" * 600)
        big = build_tcp_packet("10.9.9.9", "10.0.0.2", seg, dont_fragment=False)
        frags = fragment(big, 256)
        result = fp.process(TimedPacket(0.0, frags[0]))
        assert result.divert == DivertReason.IP_FRAGMENT

    def test_monitor_checks_can_be_disabled(self):
        config = FastPathConfig(check_tiny=False, check_order=False, divert_fragments=False)
        fp = make_fastpath(config)
        packets = packets_for(b"x" * 2000, size=4)
        _, diverts = run(fp, packets)
        assert DivertReason.TINY_SEGMENT not in diverts

    def test_threshold_override(self):
        fp = make_fastpath(FastPathConfig(threshold_override=600))
        _, diverts = run(fp, packets_for(b"x" * 2000, size=512))
        assert DivertReason.TINY_SEGMENT in diverts

    def test_threshold_comes_from_ruleset(self):
        fp = make_fastpath(piece_length=10)
        assert fp.threshold == 20

    def test_low_ttl_data_packet_diverts(self):
        fp = make_fastpath()
        seg = TcpSegment(src_port=44000, dst_port=80, seq=1, flags=TCP_ACK, payload=b"y" * 600)
        low = build_tcp_packet("10.9.9.9", "10.0.0.2", seg, ttl=2)
        result = fp.process(TimedPacket(0.0, low))
        assert result.divert == DivertReason.TTL_FLOOR

    def test_low_ttl_pure_ack_tolerated(self):
        fp = make_fastpath()
        seg = TcpSegment(src_port=44000, dst_port=80, seq=1, flags=TCP_ACK)
        low = build_tcp_packet("10.9.9.9", "10.0.0.2", seg, ttl=2)
        result = fp.process(TimedPacket(0.0, low))
        assert result.divert is None

    def test_ttl_floor_configurable(self):
        fp = make_fastpath(FastPathConfig(min_ttl=0))
        seg = TcpSegment(src_port=44000, dst_port=80, seq=1, flags=TCP_ACK, payload=b"y" * 600)
        low = build_tcp_packet("10.9.9.9", "10.0.0.2", seg, ttl=1)
        result = fp.process(TimedPacket(0.0, low))
        assert result.divert is None

    def test_seed_flow_presets_expected_seq(self):
        from repro.packet import FlowKey

        fp = make_fastpath()
        flow = FlowKey("10.9.9.9", "10.0.0.2", 44000, 80)
        fp.seed_flow(flow, 5000)
        assert fp.expected_seq(flow) == 5000
        seg = TcpSegment(src_port=44000, dst_port=80, seq=6000, flags=TCP_ACK, payload=b"z" * 600)
        result = fp.process(TimedPacket(0.0, build_tcp_packet("10.9.9.9", "10.0.0.2", seg)))
        assert result.divert == DivertReason.OUT_OF_ORDER
        assert result.flow_expected_seq == 5000


class TestPieceScanning:
    def test_whole_signature_in_one_packet_diverts(self):
        fp = make_fastpath()
        payload = b"A" * 100 + ATTACK_SIGNATURE + b"B" * 100
        results, diverts = run(fp, packets_for(payload, size=1460))
        assert DivertReason.PIECE_MATCH in diverts
        hits = [h for r in results for h in r.piece_hits]
        assert {h.signature.sid for h in hits} == {5001}

    def test_single_piece_in_packet_diverts(self):
        fp = make_fastpath()
        rules = attack_ruleset()
        split = split_ruleset(rules, SplitPolicy(piece_length=8))
        piece = split.splits[5001].pieces[1]
        payload = b"x" * 50 + piece.data + b"y" * 50
        _, diverts = run(fp, packets_for(payload))
        assert DivertReason.PIECE_MATCH in diverts

    def test_wrong_port_piece_does_not_divert(self):
        fp = make_fastpath()
        payload = b"A" * 50 + ATTACK_SIGNATURE + b"B" * 50
        packets = packets_for(payload, dst_port=8081)  # sid 5001 is port-80 only
        _, diverts = run(fp, packets)
        assert DivertReason.PIECE_MATCH not in diverts

    def test_bytes_scanned_counts_payload(self):
        fp = make_fastpath()
        payload = b"q" * 700
        run(fp, packets_for(payload, size=512))
        assert fp.bytes_scanned == 700

    def test_short_signature_whole_match_alerts(self):
        from repro.signatures import Signature

        rules = attack_ruleset(extra=[Signature(sid=9001, pattern=b"tiny!", msg="short")])
        split = split_ruleset(rules, SplitPolicy(piece_length=8))
        assert any(s.sid == 9001 for s in split.unsplittable)
        fp = FastPath(split)
        payload = b"aaaa tiny! bbbb" + b"c" * 100
        results, diverts = run(fp, packets_for(payload))
        alerts = [a for r in results for a in r.alerts]
        assert any(a.sid == 9001 and a.path == "fast" for a in alerts)

    def test_short_signature_scan_can_be_disabled(self):
        from repro.signatures import Signature

        rules = attack_ruleset(extra=[Signature(sid=9001, pattern=b"tiny!", msg="short")])
        split = split_ruleset(rules, SplitPolicy(piece_length=8))
        fp = FastPath(split, FastPathConfig(scan_short_signatures=False))
        payload = b"aaaa tiny! bbbb" + b"c" * 100
        results, _ = run(fp, packets_for(payload))
        assert all(not r.alerts for r in results)
